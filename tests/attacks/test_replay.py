"""Tests for replay campaigns and cross-run budgets (Section 6.2)."""

import pytest

from repro.attacks.replay import ReplayCampaign
from repro.core.accountant import LeakageAccountant
from repro.errors import SimulationError


def make_victim(cooldown):
    """A victim that wants a visible resize at every assessment."""

    def run(accountant: LeakageAccountant):
        decisions = []
        for i in range(1, 6):
            wants_visible = True
            allowed = accountant.check_resize_allowed()
            visible = wants_visible and allowed
            accountant.on_assessment(i * cooldown, visible)
            decisions.append((i * cooldown, visible))
        return decisions

    return run


class TestReplayCampaign:
    def test_leakage_accumulates_across_runs(self, small_rate_table):
        accountant = LeakageAccountant(small_rate_table)
        campaign = ReplayCampaign(accountant, make_victim(small_rate_table.cooldown))
        runs = campaign.replay(3)
        assert len(runs) == 3
        assert campaign.total_bits == pytest.approx(
            sum(run.bits_charged for run in runs)
        )
        # Each run leaks roughly the same amount (same behaviour).
        assert runs[1].bits_charged == pytest.approx(runs[0].bits_charged, rel=0.3)

    def test_budget_eventually_stops_resizes(self, small_rate_table):
        threshold = 4.0
        accountant = LeakageAccountant(small_rate_table, threshold_bits=threshold)
        campaign = ReplayCampaign(accountant, make_victim(small_rate_table.cooldown))
        campaign.replay(20)
        last = campaign.runs[-1]
        # In the final runs the victim is denied every resize...
        assert last.resizes_allowed == 0
        # ...and the accumulated leakage never blows past the threshold.
        assert not campaign.threshold_ever_exceeded

    def test_exhausted_runs_leak_almost_nothing(self, small_rate_table):
        accountant = LeakageAccountant(small_rate_table, threshold_bits=3.0)
        campaign = ReplayCampaign(accountant, make_victim(small_rate_table.cooldown))
        campaign.replay(15)
        first = campaign.runs[0].bits_charged
        last = campaign.runs[-1].bits_charged
        # Maintain-only runs are priced at the deep-maintain rate.
        assert last < first

    def test_zero_replays_rejected(self, small_rate_table):
        accountant = LeakageAccountant(small_rate_table)
        campaign = ReplayCampaign(accountant, make_victim(small_rate_table.cooldown))
        with pytest.raises(SimulationError):
            campaign.replay(0)

    def test_no_threshold_never_flags(self, small_rate_table):
        accountant = LeakageAccountant(small_rate_table)
        campaign = ReplayCampaign(accountant, make_victim(small_rate_table.cooldown))
        campaign.replay(2)
        assert not campaign.threshold_ever_exceeded
