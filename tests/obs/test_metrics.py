"""Tests for the metrics registry (:mod:`repro.obs.metrics`)."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import (
    METRICS_ENV,
    MetricsRegistry,
    export_metrics,
    get_registry,
    metrics_output_path,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc(self, registry):
        c = registry.counter("x_total", "things")
        c.inc()
        c.inc(2)
        assert c.value == 3

    def test_get_or_create_returns_same_object(self, registry):
        assert registry.counter("x_total") is registry.counter("x_total")

    def test_labels_make_distinct_series(self, registry):
        a = registry.counter("x_total", status="ok")
        b = registry.counter("x_total", status="bad")
        assert a is not b
        a.inc()
        assert b.value == 0

    def test_set_total_never_decreases(self, registry):
        c = registry.counter("x_total")
        c.set_total(5)
        c.set_total(3)
        assert c.value == 5

    def test_kind_mismatch_rejected(self, registry):
        registry.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total")


class TestGauge:
    def test_set_and_inc(self, registry):
        g = registry.gauge("depth")
        g.set(4.5)
        g.inc(-1.5)
        assert g.value == 3.0


class TestHistogram:
    def test_bucket_counts_are_cumulative_in_render(self, registry):
        h = registry.histogram("lat_seconds", buckets=(1.0, 5.0))
        for value in (0.5, 0.7, 3.0, 100.0):
            h.observe(value)
        lines = h.render()
        assert 'lat_seconds_bucket{le="1"} 2' in lines
        assert 'lat_seconds_bucket{le="5"} 3' in lines
        assert 'lat_seconds_bucket{le="+Inf"} 4' in lines
        assert "lat_seconds_sum 104.2" in lines
        assert "lat_seconds_count 4" in lines

    def test_snapshot_value(self, registry):
        h = registry.histogram("lat_seconds", buckets=(1.0,))
        h.observe(0.5)
        snap = h.snapshot_value()
        assert snap["count"] == 1
        assert snap["sum"] == 0.5
        assert snap["buckets"]["1"] == 1

    def test_needs_buckets(self):
        from repro.obs.metrics import Histogram

        with pytest.raises(ValueError):
            Histogram("x", "", (), buckets=())


class TestRender:
    def test_prometheus_format(self, registry):
        registry.counter("a_total", "help text", status="ok").inc()
        registry.gauge("b_seconds", "secs").set(1.25)
        text = registry.render_prometheus()
        assert "# HELP a_total help text" in text
        assert "# TYPE a_total counter" in text
        assert 'a_total{status="ok"} 1' in text
        assert "# TYPE b_seconds gauge" in text
        assert "b_seconds 1.25" in text
        assert text.endswith("\n")

    def test_no_duplicate_sample_names(self, registry):
        """Each non-comment line's sample (name+labels) appears once —
        duplicate series are invalid Prometheus exposition."""
        registry.counter("a_total", status="x").inc()
        registry.counter("a_total", status="y").inc()
        registry.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        samples = [
            line.split(" ")[0]
            for line in registry.render_prometheus().splitlines()
            if line and not line.startswith("#")
        ]
        assert len(samples) == len(set(samples))

    def test_global_registry_renders_without_duplicates(self):
        """The real process registry — with every module's metrics
        registered — must also expose each series exactly once."""
        import repro.harness.exec  # noqa: F401  (registers engine metrics)
        import repro.sim.system  # noqa: F401  (registers simulator metrics)

        samples = [
            line.split(" ")[0]
            for line in get_registry().render_prometheus().splitlines()
            if line and not line.startswith("#")
        ]
        assert len(samples) == len(set(samples))

    def test_snapshot_is_json_able(self, registry):
        registry.counter("a_total", status="ok").inc()
        registry.histogram("h_seconds", buckets=(1.0,)).observe(2.0)
        json.dumps(registry.snapshot())  # must not raise
        assert registry.snapshot()["a_total"]['{status="ok"}'] == 1


class TestExport:
    def test_write_textfile_and_json(self, registry, tmp_path):
        registry.counter("a_total").inc()
        prom = registry.write_textfile(tmp_path / "m.prom")
        js = registry.write_json(tmp_path / "m.json")
        assert "a_total 1" in prom.read_text()
        assert json.loads(js.read_text())["a_total"][""] == 1
        # No leftover temp files from the atomic write.
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "m.json",
            "m.prom",
        ]

    def test_export_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(METRICS_ENV, raising=False)
        assert metrics_output_path() is None
        assert export_metrics() is None

    def test_export_honors_env(self, monkeypatch, tmp_path):
        target = tmp_path / "metrics.prom"
        monkeypatch.setenv(METRICS_ENV, str(target))
        written = export_metrics()
        assert written is not None
        text, snapshot = written
        assert text == target
        assert snapshot == tmp_path / "metrics.prom.json"
        assert target.exists() and snapshot.exists()

    def test_explicit_path_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv(METRICS_ENV, raising=False)
        text, snapshot = export_metrics(tmp_path / "out.prom")
        assert text.exists() and snapshot.exists()
