"""Tests for the span tracer (:mod:`repro.obs.trace`)."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import trace as obs_trace
from repro.obs.trace import (
    NOOP_SPAN,
    TRACE_ENV,
    Tracer,
    configure_tracing,
    default_trace_path,
    span,
    tracing_enabled,
)


def read_lines(path):
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]


class TestDisabledFastPath:
    def test_disabled_returns_shared_noop(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV, raising=False)
        assert span("anything", a=1) is NOOP_SPAN
        assert not tracing_enabled()

    def test_zero_disables(self, monkeypatch):
        monkeypatch.setenv(TRACE_ENV, "0")
        assert span("anything") is NOOP_SPAN

    def test_noop_span_supports_full_protocol(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV, raising=False)
        with span("x", a=1) as handle:
            assert handle.set(b=2) is handle
        obs_trace.event("x", a=1)  # must not raise either

    def test_reconfiguration_takes_effect_without_restart(
        self, monkeypatch, tmp_path
    ):
        """Flipping REPRO_TRACE mid-process switches the sink."""
        monkeypatch.delenv(TRACE_ENV, raising=False)
        assert not tracing_enabled()
        sink = tmp_path / "t.jsonl"
        monkeypatch.setenv(TRACE_ENV, str(sink))
        assert tracing_enabled()
        with span("reconfig"):
            pass
        assert read_lines(sink)[0]["name"] == "reconfig"
        monkeypatch.setenv(TRACE_ENV, "0")
        assert not tracing_enabled()


class TestSpanLines:
    def test_span_line_schema(self, monkeypatch, tmp_path):
        sink = tmp_path / "trace.jsonl"
        monkeypatch.setenv(TRACE_ENV, str(sink))
        with span("phase.one", scheme="untangle") as handle:
            handle.set(cycles=42)
        (line,) = read_lines(sink)
        assert line["kind"] == "span"
        assert line["name"] == "phase.one"
        assert line["attrs"] == {"scheme": "untangle", "cycles": 42}
        assert line["t1"] >= line["t0"]
        assert line["dur"] == pytest.approx(line["t1"] - line["t0"])
        assert line["parent"] is None
        assert isinstance(line["pid"], int)

    def test_nested_spans_record_parent_ids(self, monkeypatch, tmp_path):
        sink = tmp_path / "trace.jsonl"
        monkeypatch.setenv(TRACE_ENV, str(sink))
        with span("outer"):
            with span("inner"):
                pass
        inner, outer = read_lines(sink)  # inner closes (writes) first
        assert inner["name"] == "inner"
        assert inner["parent"] == outer["id"]
        assert outer["parent"] is None

    def test_event_records_enclosing_span(self, monkeypatch, tmp_path):
        sink = tmp_path / "trace.jsonl"
        monkeypatch.setenv(TRACE_ENV, str(sink))
        with span("outer"):
            obs_trace.event("tick", n=1)
        event_line, span_line = read_lines(sink)
        assert event_line["kind"] == "event"
        assert event_line["attrs"] == {"n": 1}
        assert event_line["parent"] == span_line["id"]

    def test_exception_annotates_span(self, monkeypatch, tmp_path):
        sink = tmp_path / "trace.jsonl"
        monkeypatch.setenv(TRACE_ENV, str(sink))
        with pytest.raises(ValueError):
            with span("boom"):
                raise ValueError("nope")
        (line,) = read_lines(sink)
        assert line["attrs"]["error"] == "ValueError"

    def test_unjsonable_attrs_are_stringified(self, monkeypatch, tmp_path):
        sink = tmp_path / "trace.jsonl"
        monkeypatch.setenv(TRACE_ENV, str(sink))
        with span("odd", path=tmp_path):  # Path is not JSON-able
            pass
        (line,) = read_lines(sink)
        assert line["attrs"]["path"] == str(tmp_path)


class TestTracer:
    def test_concurrent_threads_write_whole_lines(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl")

        def worker(i):
            for j in range(50):
                tracer.event("tick", thread=i, j=j)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        tracer.close()
        lines = read_lines(tmp_path / "t.jsonl")
        assert len(lines) == 200  # every line parsed — no torn writes

    def test_unwritable_sink_never_raises(self, tmp_path):
        target = tmp_path / "dir-not-file"
        target.mkdir()
        tracer = Tracer(target)  # opening a directory fails
        tracer.event("tick")  # swallowed, tracer marked broken
        assert tracer._broken

    def test_span_ids_unique_within_process(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl")
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        tracer.close()
        ids = {line["id"] for line in read_lines(tmp_path / "t.jsonl")}
        assert len(ids) == 2


class TestConfigure:
    def test_configure_sets_and_clears_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv(TRACE_ENV, raising=False)
        configure_tracing(tmp_path / "t.jsonl")
        try:
            assert tracing_enabled()
        finally:
            configure_tracing(None)
        assert not tracing_enabled()

    def test_default_path_rides_with_cache_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert default_trace_path() == tmp_path / "trace.jsonl"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert default_trace_path().name == "trace.jsonl"
