"""Tests for the trace summarizer (:mod:`repro.obs.summarize`)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.summarize import load_trace, render_summary, summarize_trace


def span_line(name, t0, t1, **attrs):
    return json.dumps(
        {
            "kind": "span",
            "name": name,
            "t0": t0,
            "t1": t1,
            "dur": t1 - t0,
            "wall": 0.0,
            "pid": 1,
            "id": "1-1",
            "parent": None,
            "attrs": attrs,
        }
    )


def event_line(name):
    return json.dumps(
        {
            "kind": "event",
            "name": name,
            "t": 0.0,
            "wall": 0.0,
            "pid": 1,
            "parent": None,
            "attrs": {},
        }
    )


def write_trace(path, lines):
    path.write_text("\n".join(lines) + "\n")
    return path


class TestSummarize:
    def test_phase_aggregation(self, tmp_path):
        trace = write_trace(
            tmp_path / "t.jsonl",
            [
                span_line("cell.compute", 0.0, 2.0),
                span_line("cell.compute", 2.0, 3.0),
                span_line("engine.run", 0.0, 3.5),
                event_line("journal.append"),
                event_line("journal.append"),
            ],
        )
        summary = summarize_trace(trace)
        assert summary.spans == 3
        assert summary.skipped_lines == 0
        assert summary.extent_seconds == pytest.approx(3.5)
        assert summary.total_span_seconds == pytest.approx(6.5)
        assert summary.events == {"journal.append": 2}
        # Sorted by total time, engine.run (3.5s) first.
        assert summary.phases[0].name == "engine.run"
        compute = summary.phases[1]
        assert compute.count == 2
        assert compute.total_seconds == pytest.approx(3.0)
        assert compute.mean_seconds == pytest.approx(1.5)
        assert compute.min_seconds == pytest.approx(1.0)
        assert compute.max_seconds == pytest.approx(2.0)

    def test_damaged_lines_are_counted_not_fatal(self, tmp_path):
        trace = write_trace(
            tmp_path / "t.jsonl",
            [
                span_line("ok", 0.0, 1.0),
                '{"kind": "span", "name": "torn", "t0": 1.0',  # torn append
                "not json at all",
                '{"kind": "mystery"}',  # foreign record
                '{"kind": "span", "name": "no-dur"}',  # missing fields
            ],
        )
        summary = summarize_trace(trace)
        assert summary.spans == 1
        assert summary.skipped_lines == 4

    def test_missing_file_raises_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            summarize_trace(tmp_path / "absent.jsonl")

    def test_load_trace_skips_blank_lines(self, tmp_path):
        trace = write_trace(
            tmp_path / "t.jsonl", [span_line("a", 0.0, 1.0), "", "  "]
        )
        records, skipped = load_trace(trace)
        assert len(records) == 1 and skipped == 0


class TestRender:
    def test_table_contents(self, tmp_path):
        trace = write_trace(
            tmp_path / "t.jsonl",
            [
                span_line("cell.compute", 0.0, 2.0),
                span_line("engine.run", 0.0, 2.5),
                event_line("cell.retry"),
            ],
        )
        text = render_summary(summarize_trace(trace))
        assert "Trace summary" in text
        assert "cell.compute" in text
        assert "engine.run" in text
        assert "share" in text
        assert "cell.retry" in text
        # engine.run holds 2.5 of 4.5 span-seconds.
        assert "55.6%" in text

    def test_empty_trace_renders(self, tmp_path):
        trace = write_trace(tmp_path / "t.jsonl", [event_line("only.events")])
        text = render_summary(summarize_trace(trace))
        assert "(no spans)" in text
        assert "only.events" in text

    def test_skipped_lines_reported(self, tmp_path):
        trace = write_trace(tmp_path / "t.jsonl", ["garbage"])
        text = render_summary(summarize_trace(trace))
        assert "skipped lines: 1" in text
