"""Every example script must at least parse and compile."""

import pathlib
import py_compile

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    """The deliverable requires a quickstart plus domain scenarios."""
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path, tmp_path):
    py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_has_main_guard_and_docstring(path):
    source = path.read_text()
    assert '"""' in source.split("\n", 2)[1] or source.startswith(
        ('"""', "#!/usr/bin/env python3")
    )
    assert 'if __name__ == "__main__":' in source
