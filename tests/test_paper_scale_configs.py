"""Paper-scale configuration constructors (documentation-grade checks).

These configs are never simulated wholesale, but their numbers must
match Table 3 and Section 8 exactly, since the scaled profiles are
derived from them.
"""

import pytest

from repro.config import CAPACITY_SCALE, LINE_BYTES, ArchConfig
from repro.workloads.workload import WorkloadScale


class TestPaperArch:
    def test_table3_capacities(self):
        paper = ArchConfig.paper()
        # 16 MB LLC, 64 B lines.
        assert paper.llc_lines * LINE_BYTES == 16 * 1024 * 1024
        # 32 kB L1.
        assert paper.l1_lines * LINE_BYTES == 32 * 1024
        assert paper.llc_associativity == 16
        assert paper.l1_associativity == 8

    def test_table3_partition_sizes(self):
        paper = ArchConfig.paper()
        sizes_bytes = [s * LINE_BYTES for s in paper.supported_partition_lines]
        kib, mib = 1024, 1024 * 1024
        assert sizes_bytes == [
            128 * kib, 256 * kib, 512 * kib, 1 * mib, 2 * mib,
            3 * mib, 4 * mib, 6 * mib, 8 * mib,
        ]

    def test_static_default_is_2mb(self):
        paper = ArchConfig.paper()
        assert paper.default_partition_lines * LINE_BYTES == 2 * 1024 * 1024

    def test_eight_cores_eight_wide(self):
        paper = ArchConfig.paper()
        assert paper.num_cores == 8
        assert paper.issue_width == 8

    def test_capacity_scale_consistency(self):
        paper = ArchConfig.paper()
        scaled = ArchConfig.scaled()
        assert paper.llc_lines == CAPACITY_SCALE * scaled.llc_lines
        assert paper.default_partition_lines == (
            CAPACITY_SCALE * scaled.default_partition_lines
        )


class TestPaperWorkloadScale:
    def test_section8_instruction_counts(self):
        paper = WorkloadScale.paper()
        assert paper.spec_instructions == 500_000_000
        assert paper.crypto_instructions == 50_000_000
        assert paper.spec_chunk == 10_000_000
        assert paper.crypto_chunk == 1_000_000

    def test_scaled_preserves_ratios(self):
        paper = WorkloadScale.paper()
        scaled = WorkloadScale()
        assert (
            paper.spec_instructions / paper.crypto_instructions
            == scaled.spec_instructions / scaled.crypto_instructions
        )
        assert (
            paper.spec_chunk / paper.crypto_chunk
            == scaled.spec_chunk / scaled.crypto_chunk
        )

    def test_scale_factor_magnitude(self):
        paper = WorkloadScale.paper()
        scaled = WorkloadScale()
        factor = paper.spec_instructions / scaled.spec_instructions
        assert 1_000 <= factor <= 20_000  # the documented ~8000x
