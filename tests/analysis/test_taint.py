"""Tests for the taint analysis producing Untangle annotations."""

from repro.analysis.ir import (
    Program,
    alu,
    branch,
    const,
    load,
    read_public,
    read_secret,
    store,
)
from repro.analysis.programs import (
    public_traversal,
    secret_gated_traversal,
    secret_strided_traversal,
    tainted_store_then_load,
)
from repro.analysis.taint import analyze, annotate
from repro.core.annotations import AnnotationKind


class TestDataFlow:
    def test_secret_load_address_is_resource_use(self):
        program = Program([read_secret("s"), load("v", "s")])
        kinds = analyze(program).kinds
        assert kinds[1] & AnnotationKind.SECRET_RESOURCE_USE

    def test_public_load_unannotated(self):
        program = Program([const("a", 100), load("v", "a")])
        kinds = analyze(program).kinds
        assert kinds[1] is AnnotationKind.NONE

    def test_taint_propagates_through_alu(self):
        program = Program(
            [read_secret("s"), alu("t", "s"), alu("u", "t"), load("v", "u")]
        )
        kinds = analyze(program).kinds
        assert kinds[3] & AnnotationKind.SECRET_RESOURCE_USE

    def test_overwrite_clears_taint(self):
        program = Program(
            [read_secret("s"), const("s", 0), load("v", "s")]
        )
        kinds = analyze(program).kinds
        assert kinds[2] is AnnotationKind.NONE

    def test_loaded_secret_taints_register(self):
        program = Program(
            [
                read_secret("s"),
                const("slot", 50),
                store("s", "slot"),
                const("a", 50),
                load("v", "a"),
                load("w", "v"),
            ]
        )
        kinds = analyze(program).kinds
        # The load-through-tainted-memory value used as an address.
        assert kinds[5] & AnnotationKind.SECRET_RESOURCE_USE

    def test_tainted_store_address_flagged(self):
        program = Program([read_secret("s"), store("s", "s")])
        kinds = analyze(program).kinds
        assert kinds[1] & AnnotationKind.SECRET_RESOURCE_USE


class TestControlFlow:
    def test_branch_body_is_secret_control(self):
        program = Program(
            [read_secret("s"), branch("s", 2), const("x", 1), load("v", "x")]
        )
        kinds = analyze(program).kinds
        assert kinds[2] & AnnotationKind.SECRET_CONTROL
        assert kinds[3] & AnnotationKind.SECRET_CONTROL

    def test_instruction_after_body_unannotated(self):
        program = Program(
            [read_secret("s"), branch("s", 1), const("x", 1), const("y", 2)]
        )
        kinds = analyze(program).kinds
        assert kinds[3] is AnnotationKind.NONE

    def test_public_branch_unannotated(self):
        program = Program(
            [read_public("p"), branch("p", 1), const("x", 1)]
        )
        kinds = analyze(program).kinds
        assert kinds[2] is AnnotationKind.NONE

    def test_writes_under_secret_control_carry_implicit_flow(self):
        program = Program(
            [
                read_secret("s"),
                branch("s", 1),
                const("x", 1),  # x now reveals the branch outcome
                load("v", "x"),
            ]
        )
        kinds = analyze(program).kinds
        assert kinds[3] & AnnotationKind.SECRET_RESOURCE_USE


class TestPaperPrograms:
    def test_figure_1a_annotations(self):
        report = analyze(secret_gated_traversal(4))
        vector = report.annotation_vector()
        # The traversal (everything after the branch) is progress-excluded.
        assert vector.progress_excluded[2:].all()
        assert vector.metric_excluded[2:].all()

    def test_figure_1b_annotations(self):
        report = analyze(secret_strided_traversal(4))
        vector = report.annotation_vector()
        load_positions = [
            i
            for i, inst in enumerate(secret_strided_traversal(4).instructions)
            if inst.is_memory
        ]
        # The first load is arr[0 * secret] = arr[0]: genuinely public.
        # Every later load's address accumulates the secret stride.
        assert not vector.metric_excluded[load_positions[0]]
        assert all(vector.metric_excluded[i] for i in load_positions[1:])
        # Nothing is progress-excluded (the control flow is public).
        assert not vector.progress_excluded.any()

    def test_figure_1c_public_part_clean(self):
        report = analyze(public_traversal(4))
        assert report.annotated_count == 0

    def test_memory_taint_example(self):
        report = analyze(tainted_store_then_load())
        assert report.annotated_count > 0

    def test_annotate_convenience(self):
        vector = annotate(secret_gated_traversal(2))
        assert vector.metric_excluded.any()
