"""Tests for the miniature IR."""

import pytest

from repro.analysis.ir import (
    Instruction,
    Opcode,
    Program,
    alu,
    branch,
    const,
    load,
    read_public,
    read_secret,
    store,
)
from repro.errors import AnnotationError


class TestInstruction:
    def test_load_requires_address_register(self):
        with pytest.raises(AnnotationError):
            Instruction(Opcode.LOAD, dst="r")

    def test_store_requires_address_register(self):
        with pytest.raises(AnnotationError):
            Instruction(Opcode.STORE, sources=("r",))

    def test_branch_requires_condition(self):
        with pytest.raises(AnnotationError):
            Instruction(Opcode.BRANCH)

    def test_branch_negative_body_rejected(self):
        with pytest.raises(AnnotationError):
            Instruction(Opcode.BRANCH, sources=("c",), body_len=-1)

    def test_is_memory(self):
        assert load("r", "a").is_memory
        assert store("r", "a").is_memory
        assert not alu("r", "x").is_memory


class TestProgram:
    def test_validate_accepts_in_bounds_branch(self):
        program = Program([read_secret("s"), branch("s", 1), const("x", 1)])
        program.validate()

    def test_validate_rejects_overrunning_branch(self):
        program = Program([read_secret("s"), branch("s", 5), const("x", 1)])
        with pytest.raises(AnnotationError):
            program.validate()

    def test_len_and_iter(self):
        program = Program([const("x", 1), const("y", 2)])
        assert len(program) == 2
        assert [i.opcode for i in program] == [Opcode.CONST, Opcode.CONST]


class TestHelpers:
    def test_const_stores_value_in_offset(self):
        assert const("x", 42).offset == 42

    def test_alu_sources(self):
        assert alu("d", "a", "b").sources == ("a", "b")

    def test_load_store_offsets(self):
        assert load("d", "a", offset=8).offset == 8
        assert store("s", "a", offset=4).sources == ("s",)

    def test_io_opcodes(self):
        assert read_secret("s").opcode is Opcode.READ_SECRET
        assert read_public("p").opcode is Opcode.READ_PUBLIC
