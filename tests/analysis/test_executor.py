"""Tests for the IR executor (analysis -> simulation pipeline)."""

import numpy as np
import pytest

from repro.analysis.executor import execute
from repro.analysis.ir import Program, branch, const, load, read_secret
from repro.analysis.programs import (
    secret_gated_traversal,
    secret_strided_traversal,
)
from repro.errors import AnnotationError


class TestBasics:
    def test_load_emits_memory_instruction(self):
        program = Program([const("a", 77), load("v", "a")])
        result = execute(program, secret_inputs=[])
        assert result.stream.addresses.tolist() == [-1, 77]

    def test_line_shift(self):
        program = Program([const("a", 128), load("v", "a")])
        result = execute(program, secret_inputs=[], line_shift=6)
        assert result.stream.addresses[1] == 2

    def test_branch_taken_and_untaken(self):
        program = Program(
            [read_secret("s"), branch("s", 1), const("x", 5)]
        )
        taken = execute(program, secret_inputs=[1])
        skipped = execute(program, secret_inputs=[0])
        assert taken.executed_instructions == 3
        assert skipped.executed_instructions == 2
        assert taken.registers.get("x") == 5
        assert "x" not in skipped.registers

    def test_repeat(self):
        program = Program([read_secret("s"), const("a", 3), load("v", "a")])
        result = execute(program, secret_inputs=[1], repeat=3)
        assert result.executed_instructions == 9

    def test_missing_secret_rejected(self):
        program = Program([read_secret("s")])
        with pytest.raises(AnnotationError):
            execute(program, secret_inputs=[])

    def test_missing_public_rejected(self):
        from repro.analysis.ir import read_public

        program = Program([read_public("p")])
        with pytest.raises(AnnotationError):
            execute(program, secret_inputs=[], public_inputs=[])

    def test_bad_repeat(self):
        with pytest.raises(AnnotationError):
            execute(Program([const("x", 1)]), secret_inputs=[], repeat=0)

    def test_store_load_roundtrip(self):
        from repro.analysis.ir import store

        program = Program(
            [
                const("v", 42),
                const("a", 10),
                store("v", "a"),
                load("w", "a"),
            ]
        )
        result = execute(program, secret_inputs=[])
        assert result.registers["w"] == 42


class TestAnnotatedExecution:
    def test_figure_1a_dynamic_annotations(self):
        """Executed traversal instructions carry their static annotations."""
        program = secret_gated_traversal(4)
        result = execute(program, secret_inputs=[1])
        stream = result.stream
        mem_mask = stream.addresses >= 0
        assert mem_mask.sum() == 4
        assert stream.annotations.metric_excluded[mem_mask].all()
        assert stream.annotations.progress_excluded[mem_mask].all()

    def test_figure_1a_public_progress_secret_independent(self):
        """The core property: public progress ignores the secret."""
        program = secret_gated_traversal(4)
        with_secret = execute(program, secret_inputs=[1])
        without = execute(program, secret_inputs=[0])
        assert (
            with_secret.stream.public_per_pass
            == without.stream.public_per_pass
        )

    def test_figure_1b_footprint_depends_on_secret(self):
        program = secret_strided_traversal(8)
        narrow = execute(program, secret_inputs=[0])
        wide = execute(program, secret_inputs=[3])
        def footprint(result):
            addresses = result.stream.addresses
            return len(np.unique(addresses[addresses >= 0]))
        assert footprint(wide) > footprint(narrow)

    def test_figure_1b_metric_excluded_hides_the_difference(self):
        """Metric-visible accesses are identical across secrets."""
        program = secret_strided_traversal(8)
        a = execute(program, secret_inputs=[0])
        b = execute(program, secret_inputs=[3])
        visible_a = a.stream.addresses[~a.stream.annotations.metric_excluded]
        visible_b = b.stream.addresses[~b.stream.annotations.metric_excluded]
        assert np.array_equal(visible_a, visible_b)
