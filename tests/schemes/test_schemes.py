"""Tests for the four partitioning schemes on small systems."""

import numpy as np
import pytest

from repro.config import ArchConfig
from repro.core.covert import uniform_delay
from repro.core.principles import require_untangle_compliant
from repro.core.rates import RmaxTable
from repro.errors import ConfigurationError, PrincipleViolation
from repro.schemes.schedule import ProgressSchedule, TimeSchedule
from repro.schemes.shared import SharedScheme
from repro.schemes.static import StaticScheme
from repro.schemes.timebased import TimeScheme
from repro.schemes.untangle import UntangleScheme
from repro.sim.cpu import CoreConfig, InstructionStream
from repro.sim.system import DomainSpec, MultiDomainSystem


def make_domains(arch, instructions=3_000, working_sets=None, seed=0):
    """Domains with different working sets so allocation has something to do."""
    rng = np.random.default_rng(seed)
    working_sets = working_sets or [16 * (i + 1) for i in range(arch.num_cores)]
    domains = []
    for i in range(arch.num_cores):
        addresses = np.full(instructions, -1, dtype=np.int64)
        mem_slots = np.arange(0, instructions, 3)
        addresses[mem_slots] = (
            rng.integers(0, working_sets[i], size=len(mem_slots)) + i * 100_000
        )
        domains.append(
            DomainSpec(
                name=f"d{i}",
                stream=InstructionStream(addresses),
                core_config=CoreConfig(mlp=2.0, slice_instructions=instructions),
            )
        )
    return domains


def run_scheme(arch, scheme, domains=None, max_cycles=2_000_000):
    system = MultiDomainSystem(
        arch, domains or make_domains(arch), scheme, quantum=100,
        sample_interval=200,
    )
    return system.run(max_cycles=max_cycles), system


@pytest.fixture()
def small_table(small_channel_model):
    table = RmaxTable(small_channel_model, capacity=4, solver_iterations=100)
    table.entries()
    return table


class TestStaticScheme:
    def test_partitions_never_change(self, tiny_arch):
        result, system = run_scheme(tiny_arch, StaticScheme(tiny_arch))
        for stats in result.stats:
            sizes = {s.lines for s in stats.partition_samples}
            assert sizes == {tiny_arch.default_partition_lines}
        assert all(s.leakage_bits == 0.0 for s in result.stats)

    def test_custom_partition_size(self, tiny_arch):
        scheme = StaticScheme(tiny_arch, partition_lines=64)
        result, _ = run_scheme(tiny_arch, scheme)
        assert result.stats[0].partition_samples[0].lines == 64

    def test_oversized_partition_rejected(self, tiny_arch):
        with pytest.raises(ConfigurationError):
            StaticScheme(tiny_arch, partition_lines=tiny_arch.llc_lines)


class TestSharedScheme:
    def test_runs_and_reports_full_llc(self, tiny_arch):
        result, system = run_scheme(tiny_arch, SharedScheme(tiny_arch))
        assert result.completed
        assert system.scheme.partition_size(0) == tiny_arch.llc_lines
        assert all(s.assessments == 0 for s in result.stats)


class TestTimeScheme:
    def make_scheme(self, arch):
        return TimeScheme(arch, interval=400, monitor_window=1_000)

    def test_charges_log2_alphabet_per_assessment(self, tiny_arch):
        result, _ = run_scheme(tiny_arch, self.make_scheme(tiny_arch))
        for stats in result.stats:
            assert stats.assessments > 0
            assert stats.bits_per_assessment == pytest.approx(
                np.log2(len(tiny_arch.supported_partition_lines))
            )

    def test_all_domains_assess_simultaneously(self, tiny_arch):
        result, system = run_scheme(tiny_arch, self.make_scheme(tiny_arch))
        t0 = [t for _, t in system.trace_logs[0]]
        t1 = [t for _, t in system.trace_logs[1]]
        # Same assessment times (modulo the strictly-increasing nudge).
        assert len(t0) == len(t1)

    def test_capacity_invariant_throughout(self, tiny_arch):
        scheme = self.make_scheme(tiny_arch)
        result, system = run_scheme(tiny_arch, scheme)
        assert scheme.llc.allocated_lines <= tiny_arch.llc_lines

    def test_leakage_threshold_stops_resizing(self, tiny_arch):
        scheme = TimeScheme(
            tiny_arch, interval=400, monitor_window=1_000,
            leakage_threshold_bits=10.0,
        )
        result, system = run_scheme(tiny_arch, scheme)
        for accountant in scheme.accountants:
            # Leakage keeps accruing per assessment (the assessments
            # themselves continue) but resizes stop.
            assert accountant.budget_exhausted


class TestUntangleScheme:
    def make_scheme(self, arch, table, **overrides):
        schedule = ProgressSchedule(
            instructions_per_assessment=600,
            cooldown=32,
            delay=uniform_delay(32, 4),
            seed=1,
        )
        kwargs = dict(monitor_window=1_000)
        kwargs.update(overrides)
        return UntangleScheme(arch, schedule, rmax_table=table, **kwargs)

    def test_assessments_follow_progress(self, tiny_arch, small_table):
        scheme = self.make_scheme(tiny_arch, small_table)
        result, _ = run_scheme(tiny_arch, scheme)
        assert all(s.assessments > 0 for s in result.stats)

    def test_rejects_time_based_schedule(self, tiny_arch, small_table):
        scheme = UntangleScheme.__new__(UntangleScheme)
        # Constructing with a TimeSchedule must fail the principle check
        # during build; emulate via require_untangle_compliant directly.
        from repro.monitor.umon import UMONMonitor

        monitor = UMONMonitor([4, 8], timing_independent=True)
        with pytest.raises(PrincipleViolation):
            require_untangle_compliant(monitor, TimeSchedule(100))

    def test_rejects_timing_dependent_metric(self, tiny_arch, small_table):
        from repro.monitor.metrics import TimingDependentView
        from repro.monitor.umon import UMONMonitor

        schedule = ProgressSchedule(100, 32)
        view = TimingDependentView(UMONMonitor([4, 8]))
        with pytest.raises(PrincipleViolation):
            require_untangle_compliant(view, schedule)

    def test_committed_capacity_invariant(self, tiny_arch, small_table):
        scheme = self.make_scheme(tiny_arch, small_table)
        result, _ = run_scheme(tiny_arch, scheme)
        assert sum(scheme._committed) <= tiny_arch.llc_lines
        assert scheme.llc.allocated_lines <= tiny_arch.llc_lines

    def test_leakage_below_conservative_bound(self, tiny_arch, small_table):
        """Untangle's headline: far below log2(|A|) per assessment."""
        scheme = self.make_scheme(tiny_arch, small_table)
        result, _ = run_scheme(tiny_arch, scheme)
        conservative = np.log2(len(tiny_arch.supported_partition_lines))
        for stats in result.stats:
            if stats.assessments >= 5:
                assert stats.bits_per_assessment < conservative

    def test_budget_forces_maintain(self, tiny_arch, small_table):
        scheme = self.make_scheme(
            tiny_arch, small_table, leakage_threshold_bits=0.5
        )
        result, system = run_scheme(tiny_arch, scheme)
        for domain, accountant in enumerate(scheme.accountants):
            if accountant.budget_exhausted:
                # After exhaustion every recorded action is Maintain.
                exhausted_at = None
                for charge in accountant.charges:
                    if accountant.threshold_bits is not None:
                        pass
                visible_after = [
                    action
                    for action, t in system.trace_logs[domain]
                    if action.is_visible
                ]
                # The budget at 0.5 bits allows at most a couple of resizes.
                assert len(visible_after) <= 2

    def test_delayed_actions_eventually_apply(self, tiny_arch, small_table):
        scheme = self.make_scheme(tiny_arch, small_table)
        result, _ = run_scheme(tiny_arch, scheme)
        assert not scheme._pending  # everything drained by the end
