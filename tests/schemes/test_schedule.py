"""Tests for the resizing schedules."""

import pytest

from repro.core.covert import uniform_delay
from repro.errors import ConfigurationError
from repro.schemes.schedule import ProgressSchedule, TimeSchedule


class TestTimeSchedule:
    def test_flags(self):
        assert TimeSchedule(100).progress_based is False

    def test_next_time(self):
        schedule = TimeSchedule(100)
        assert schedule.next_time(0) == 100
        assert schedule.next_time(100) == 200

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TimeSchedule(0)


class TestProgressSchedule:
    def make(self, **overrides):
        kwargs = dict(
            instructions_per_assessment=100,
            cooldown=50,
            delay=uniform_delay(48, 4),
            seed=0,
        )
        kwargs.update(overrides)
        return ProgressSchedule(**kwargs)

    def test_flags(self):
        assert self.make().progress_based is True

    def test_targets(self):
        schedule = self.make()
        assert schedule.first_target() == 100
        assert schedule.next_target(130) == 230

    def test_cooldown_clamp(self):
        schedule = self.make()
        assert schedule.assessment_time(10, None) == 10
        assert schedule.assessment_time(30, 10) == 60  # clamped to 10 + 50
        assert schedule.assessment_time(200, 10) == 200

    def test_delay_draws_within_support(self):
        schedule = self.make()
        support = set(range(0, 48, 4))
        for _ in range(50):
            assert schedule.draw_delay() in support

    def test_delay_deterministic_given_seed(self):
        a = self.make(seed=5)
        b = self.make(seed=5)
        assert [a.draw_delay() for _ in range(20)] == [
            b.draw_delay() for _ in range(20)
        ]

    def test_no_delay_default(self):
        schedule = ProgressSchedule(10, 5)
        assert schedule.draw_delay() == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProgressSchedule(0, 5)
        with pytest.raises(ConfigurationError):
            ProgressSchedule(10, -1)
