"""Tests for the threshold-based relative-action scheme."""

import numpy as np
import pytest

from repro.config import ArchConfig
from repro.core.covert import uniform_delay
from repro.core.rates import RmaxTable
from repro.errors import ConfigurationError
from repro.schemes.schedule import ProgressSchedule
from repro.schemes.threshold import ThresholdScheme
from repro.sim.cpu import CoreConfig, InstructionStream
from repro.sim.system import DomainSpec, MultiDomainSystem


@pytest.fixture(scope="module")
def rate_table(small_channel_model):
    table = RmaxTable(small_channel_model, capacity=4, solver_iterations=100)
    table.entries()
    return table


def make_scheme(arch, rate_table, **overrides):
    schedule = ProgressSchedule(
        instructions_per_assessment=400,
        cooldown=32,
        delay=uniform_delay(32, 4),
        seed=2,
    )
    return ThresholdScheme(arch, schedule, rate_table, **overrides)


def run_single(arch, scheme, working_set, instructions=6_000):
    rng = np.random.default_rng(0)
    addresses = np.full(instructions, -1, dtype=np.int64)
    slots = np.arange(0, instructions, 3)
    addresses[slots] = rng.integers(0, working_set, size=len(slots))
    stream = InstructionStream(addresses)
    system = MultiDomainSystem(
        arch,
        [DomainSpec("w", stream, CoreConfig(mlp=2.0, slice_instructions=instructions))],
        scheme,
        quantum=64,
    )
    system.run(max_cycles=2_000_000)
    return system


class TestDecide:
    def test_expand_when_footprint_near_capacity(self, tiny_arch, rate_table):
        scheme = make_scheme(tiny_arch, rate_table)
        current = 32
        assert scheme.decide(int(0.95 * current), current) == 64

    def test_shrink_when_footprint_far_below(self, tiny_arch, rate_table):
        scheme = make_scheme(tiny_arch, rate_table)
        assert scheme.decide(2, 32) == 16

    def test_maintain_in_the_deadband(self, tiny_arch, rate_table):
        scheme = make_scheme(tiny_arch, rate_table)
        assert scheme.decide(20, 32) == 32

    def test_no_expand_past_max(self, tiny_arch, rate_table):
        scheme = make_scheme(tiny_arch, rate_table)
        top = tiny_arch.supported_partition_lines[-1]
        assert scheme.decide(top, top) == top

    def test_no_shrink_past_min(self, tiny_arch, rate_table):
        scheme = make_scheme(tiny_arch, rate_table)
        bottom = tiny_arch.supported_partition_lines[0]
        assert scheme.decide(0, bottom) == bottom

    def test_hysteresis_deadband_exists(self, tiny_arch, rate_table):
        """Between the two thresholds no action is taken (anti-ping-pong)."""
        scheme = make_scheme(tiny_arch, rate_table)
        for footprint in range(10, 28):
            assert scheme.decide(footprint, 32) == 32

    def test_threshold_validation(self, tiny_arch, rate_table):
        schedule = ProgressSchedule(100, 32)
        with pytest.raises(ConfigurationError):
            ThresholdScheme(
                tiny_arch, schedule, rate_table,
                expand_fraction=0.5, shrink_fraction=0.6,
            )


class TestEndToEnd:
    def test_large_footprint_grows_partition(self, rate_table):
        arch = ArchConfig.tiny(num_cores=1)
        scheme = make_scheme(arch, rate_table)
        system = run_single(arch, scheme, working_set=100)
        assert scheme.llc.size_of(0) > arch.default_partition_lines

    def test_small_footprint_shrinks_partition(self, rate_table):
        arch = ArchConfig.tiny(num_cores=1)
        scheme = make_scheme(arch, rate_table)
        system = run_single(arch, scheme, working_set=4)
        assert scheme.llc.size_of(0) < arch.default_partition_lines

    def test_leakage_accounted(self, rate_table):
        arch = ArchConfig.tiny(num_cores=1)
        scheme = make_scheme(arch, rate_table)
        system = run_single(arch, scheme, working_set=100)
        stats = system.stats[0]
        assert stats.assessments > 0
        assert stats.leakage_bits > 0

    def test_budget_respected(self, rate_table):
        arch = ArchConfig.tiny(num_cores=1)
        scheme = make_scheme(
            arch, rate_table, leakage_threshold_bits=0.4
        )
        system = run_single(arch, scheme, working_set=100)
        accountant = scheme.accountants[0]
        max_charge = max((c.bits for c in accountant.charges), default=0.0)
        assert accountant.total_bits <= 0.4 + max_charge + 1e-9


class TestBuildCertifiesEveryMonitor:
    """Satellite regression: `build` used to certify `monitors[0]` only;
    a non-compliant monitor on any other domain slipped through."""

    def test_every_per_core_monitor_is_checked(self, tiny_arch, rate_table, monkeypatch):
        import repro.schemes.threshold as threshold_module

        certified = []
        monkeypatch.setattr(
            threshold_module,
            "require_timing_independent_metric",
            certified.append,
        )
        schedules = []
        monkeypatch.setattr(
            threshold_module,
            "require_progress_based_schedule",
            schedules.append,
        )
        scheme = make_scheme(tiny_arch, rate_table)
        stream = InstructionStream(np.full(32, -1, dtype=np.int64))
        MultiDomainSystem(
            tiny_arch,
            [
                DomainSpec("a", stream, CoreConfig()),
                DomainSpec("b", stream, CoreConfig()),
            ],
            scheme,
            quantum=64,
        )
        assert len(certified) == tiny_arch.num_cores == 2
        assert schedules == [scheme.schedule]


class TestTieredAccounting:
    def test_tier_count_must_match_domains(self, tiny_arch, rate_table):
        with pytest.raises(ConfigurationError, match="one tier per domain"):
            make_scheme(tiny_arch, rate_table, tiers=(0,))

    def test_flat_tiers_keep_peer_exchanges_chargeable(
        self, tiny_arch, rate_table
    ):
        flat = make_scheme(tiny_arch, rate_table, tiers=(0, 0))
        assert flat.tier_policy is not None
        assert flat.tier_policy.chargeable(0, [1])
        assert flat.tier_policy.chargeable(1, [0])

    def test_ladder_frees_only_the_bottom_tier(self, tiny_arch, rate_table):
        ladder = make_scheme(tiny_arch, rate_table, tiers=(0, 1))
        # Domain 0 exchanges capacity only with the strictly-higher
        # tier and nobody lower/peer can probe: uncharged (Section 6.4).
        assert not ladder.tier_policy.chargeable(0, [1])
        # Domain 1's resize is visible to a lower-tier observer.
        assert ladder.tier_policy.chargeable(1, [0])

    def test_sole_domain_with_no_counterparties_charges_less(
        self, rate_table
    ):
        # One domain, tiered accounting: every resize has no
        # counterparty left to observe it, so visible actions book as
        # Maintains — total leakage must come in strictly below the
        # base model, which charges every visible resize.
        arch = ArchConfig.tiny(num_cores=1)
        base = make_scheme(arch, rate_table)
        tiered = make_scheme(arch, rate_table, tiers=(0,))
        run_single(arch, base, working_set=100)
        system = run_single(arch, tiered, working_set=100)
        assert system.stats[0].assessments > 0
        assert (
            tiered.accountants[0].total_bits
            < base.accountants[0].total_bits
        )
