"""Set vs way partitioning under the same schemes."""

import numpy as np
import pytest

from repro.config import ArchConfig
from repro.core.covert import uniform_delay
from repro.core.rates import RmaxTable
from repro.errors import SimulationError
from repro.schemes.schedule import ProgressSchedule
from repro.schemes.static import StaticScheme
from repro.schemes.untangle import UntangleScheme
from repro.sim.cpu import CoreConfig, InstructionStream
from repro.sim.system import DomainSpec, MultiDomainSystem
from repro.sim.waypart import WayPartitionedLLC


def way_arch(num_cores=2) -> ArchConfig:
    """A machine whose partition alphabet is whole ways (128 lines each)."""
    return ArchConfig(
        num_cores=num_cores,
        llc_lines=2048,
        llc_associativity=16,
        supported_partition_lines=(128, 256, 384, 512, 768, 1024),
        default_partition_lines=256,
    )


def make_domains(arch, instructions=4_000, seed=0):
    rng = np.random.default_rng(seed)
    domains = []
    for i in range(arch.num_cores):
        addresses = np.full(instructions, -1, dtype=np.int64)
        slots = np.arange(0, instructions, 3)
        addresses[slots] = rng.integers(0, 300 * (i + 1), size=len(slots)) + i * 10**6
        domains.append(
            DomainSpec(
                f"d{i}",
                InstructionStream(addresses),
                CoreConfig(mlp=2.0, slice_instructions=instructions),
            )
        )
    return domains


@pytest.fixture(scope="module")
def rate_table(small_channel_model):
    table = RmaxTable(small_channel_model, capacity=4, solver_iterations=100)
    table.entries()
    return table


class TestStaticOverWays:
    def test_runs_and_uses_way_llc(self):
        arch = way_arch()
        scheme = StaticScheme(arch, organization="way")
        system = MultiDomainSystem(
            arch, make_domains(arch), scheme, quantum=100
        )
        result = system.run(max_cycles=2_000_000)
        assert result.completed
        assert isinstance(scheme.llc, WayPartitionedLLC)
        assert all(s.ipc > 0 for s in result.stats)

    def test_unknown_organization_rejected(self, rate_table):
        arch = way_arch()
        schedule = ProgressSchedule(500, 32, uniform_delay(32, 4))
        scheme = UntangleScheme(
            arch, schedule, rmax_table=rate_table, organization="diagonal"
        )
        with pytest.raises(SimulationError):
            MultiDomainSystem(arch, make_domains(arch), scheme)


class TestUntangleOverWays:
    def test_untangle_runs_over_way_partitioning(self, rate_table):
        arch = way_arch()
        schedule = ProgressSchedule(
            500, 32, uniform_delay(32, 4), seed=4
        )
        scheme = UntangleScheme(
            arch,
            schedule,
            rmax_table=rate_table,
            monitor_window=1_000,
            organization="way",
        )
        system = MultiDomainSystem(
            arch, make_domains(arch), scheme, quantum=100
        )
        result = system.run(max_cycles=2_000_000)
        assert result.completed
        assert all(s.assessments > 0 for s in result.stats)
        # Capacity invariant in ways.
        assert scheme.llc.allocated_lines <= arch.llc_lines
        # Sizes stay on the way-granular alphabet.
        for stats in result.stats:
            for sample in stats.partition_samples:
                assert sample.lines % 128 == 0

    def test_single_domain_action_sequence_organization_independent(
        self, rate_table
    ):
        """For a single domain, the action sequence ignores the LLC org.

        The monitor is fed the L1-filtered retired access stream, which
        is identical under either organization; with no co-runners there
        is no cross-domain timing coupling, so the decisions — pure
        functions of the monitor snapshots at progress points — match.
        (With co-runners, other domains' monitor contents at a sampling
        instant depend on their IPC, which the organization does affect;
        that coupling is environmental, like the paper's active-attacker
        discussion, not victim-secret leakage.)
        """
        arch = way_arch(num_cores=1)
        logs = {}
        for organization in ("set", "way"):
            schedule = ProgressSchedule(500, 32, uniform_delay(32, 4), seed=4)
            scheme = UntangleScheme(
                arch,
                schedule,
                rmax_table=rate_table,
                monitor_window=1_000,
                organization=organization,
            )
            system = MultiDomainSystem(
                arch, make_domains(arch), scheme, quantum=100
            )
            system.run(max_cycles=2_000_000)
            logs[organization] = tuple(
                action.new_size for action, _ in system.trace_logs[0]
            )
        assert logs["set"] == logs["way"]
        assert len(logs["set"]) > 2
