"""Tests for the lookahead hit-maximizing allocator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.schemes.allocation import GreedyHitMaximizer

SIZES = [4, 8, 16, 32, 64]


def make(total=128, hysteresis=0.0):
    return GreedyHitMaximizer(SIZES, total, hysteresis)


class TestValidation:
    def test_sizes_must_be_ascending(self):
        with pytest.raises(ConfigurationError):
            GreedyHitMaximizer([8, 4], 128)

    def test_total_must_fit_smallest(self):
        with pytest.raises(ConfigurationError):
            GreedyHitMaximizer(SIZES, 2)

    def test_negative_hysteresis(self):
        with pytest.raises(ConfigurationError):
            GreedyHitMaximizer(SIZES, 128, -0.1)

    def test_curve_length_checked(self):
        allocator = make()
        with pytest.raises(ConfigurationError):
            allocator.allocate({0: np.zeros(3)})

    def test_too_many_domains(self):
        allocator = GreedyHitMaximizer(SIZES, 8)
        with pytest.raises(ConfigurationError):
            allocator.allocate({0: np.zeros(5), 1: np.zeros(5), 2: np.zeros(5)})


class TestAllocation:
    def test_everyone_gets_minimum(self):
        allocator = make()
        result = allocator.allocate({0: np.zeros(5), 1: np.zeros(5)})
        assert result.target_sizes == {0: 4, 1: 4}

    def test_single_demanding_domain_gets_capacity(self):
        allocator = make()
        curve = np.array([0, 0, 0, 0, 1000.0])
        result = allocator.allocate({0: curve, 1: np.zeros(5)})
        assert result.target_sizes[0] == 64
        assert result.target_sizes[1] == 4

    def test_lookahead_crosses_flat_regions(self):
        """Step-shaped curves (scans) need multi-level jumps."""
        allocator = make()
        step = np.array([0.0, 0.0, 0.0, 500.0, 500.0])  # all gain at 32
        result = allocator.allocate({0: step})
        assert result.target_sizes[0] == 32  # not 64: no gain past 32

    def test_higher_utility_domain_wins_contention(self):
        allocator = GreedyHitMaximizer(SIZES, 40)  # room for one 32 + one 4
        strong = np.array([0, 0, 0, 900.0, 900.0])
        weak = np.array([0, 0, 0, 300.0, 300.0])
        result = allocator.allocate({0: strong, 1: weak})
        assert result.target_sizes[0] == 32
        assert result.target_sizes[1] == 4

    def test_capacity_never_exceeded(self):
        allocator = make(total=64)
        curves = {
            d: np.array([0, 10, 20, 30, 40.0]) * (d + 1) for d in range(4)
        }
        result = allocator.allocate(curves)
        assert sum(result.target_sizes.values()) <= 64
        assert result.total_allocated <= 64

    def test_hysteresis_suppresses_marginal_upgrades(self):
        eager = make(hysteresis=0.0)
        lazy = make(hysteresis=10.0)
        curve = np.array([0.0, 1.0, 2.0, 3.0, 4.0])  # utility < 1 everywhere
        assert eager.allocate({0: curve}).target_sizes[0] == 64
        assert lazy.allocate({0: curve}).target_sizes[0] == 4

    def test_total_hits_estimate(self):
        allocator = make()
        curve = np.array([5.0, 5.0, 5.0, 5.0, 5.0])
        result = allocator.allocate({0: curve})
        assert result.total_hits_estimate == pytest.approx(5.0)

    def test_greedy_matches_bruteforce_on_small_cases(self):
        """Exhaustive check: greedy lookahead finds the optimal total."""
        import itertools

        allocator = GreedyHitMaximizer([4, 8, 16], 24)
        rng = np.random.default_rng(3)
        for _ in range(20):
            curves = {
                d: np.sort(rng.integers(0, 50, size=3)).astype(float)
                for d in range(2)
            }
            result = allocator.allocate(curves)
            best = -1.0
            for combo in itertools.product([4, 8, 16], repeat=2):
                if sum(combo) > 24:
                    continue
                total = sum(
                    float(curves[d][[4, 8, 16].index(size)])
                    for d, size in enumerate(combo)
                )
                best = max(best, total)
            assert result.total_hits_estimate == pytest.approx(best)


class TestFeasibleSize:
    def test_target_fits(self):
        allocator = make()
        assert allocator.feasible_size(32, 8, 64) == 32

    def test_clamps_to_available(self):
        allocator = make()
        assert allocator.feasible_size(64, 8, 20) == 16

    def test_falls_back_to_current(self):
        allocator = make()
        assert allocator.feasible_size(64, 8, 2) == 8


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), total=st.sampled_from([16, 40, 100, 128]))
def test_allocation_invariants(seed, total):
    allocator = GreedyHitMaximizer(SIZES, total)
    rng = np.random.default_rng(seed)
    domains = rng.integers(1, 1 + total // SIZES[0])
    curves = {
        d: np.sort(rng.integers(0, 100, size=5)).astype(float)
        for d in range(domains)
    }
    result = allocator.allocate(curves)
    assert sum(result.target_sizes.values()) <= total
    assert all(size in SIZES for size in result.target_sizes.values())
    assert result.total_hits_estimate >= sum(c[0] for c in curves.values()) - 1e-9
