"""Tests for the tiered security extension (Section 6.4)."""

import pytest

from repro.errors import ConfigurationError
from repro.schemes.tiered import TierAssignment, TieredAccountingPolicy


@pytest.fixture()
def lattice():
    # Domains 0,1 at tier 0 (low); 2 at tier 1; 3 at tier 2 (high).
    return TierAssignment(tiers=(0, 0, 1, 2))


class TestTierAssignment:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TierAssignment(tiers=())
        with pytest.raises(ConfigurationError):
            TierAssignment(tiers=(0, -1))

    def test_relations(self, lattice):
        assert lattice.peers_of(0) == [1]
        assert lattice.lower_than(2) == [0, 1]
        assert lattice.strictly_higher(0) == [2, 3]
        assert lattice.strictly_higher(3) == []


class TestChargeability:
    def test_peer_exchange_always_charged(self, lattice):
        policy = TieredAccountingPolicy(lattice)
        assert policy.charge_factor(0, [1]) == 1.0

    def test_downward_flow_charged(self, lattice):
        """A high-tier actor resizing against lower tiers is charged."""
        policy = TieredAccountingPolicy(lattice)
        assert policy.charge_factor(3, [0]) == 1.0

    def test_upward_flow_free_when_no_lower_observers(self):
        """Sole low domain exchanging with the high domain: free."""
        policy = TieredAccountingPolicy(TierAssignment(tiers=(0, 1)))
        assert policy.charge_factor(0, [1]) == 0.0
        assert not policy.chargeable(0, [1])

    def test_upward_flow_charged_if_a_peer_can_probe(self, lattice):
        """Domain 0 resizing against tier-2 domain 3 is still observable
        by its peer domain 1 — so it charges."""
        policy = TieredAccountingPolicy(lattice)
        assert policy.charge_factor(0, [3]) == 1.0

    def test_mixed_counterparties_charged(self, lattice):
        policy = TieredAccountingPolicy(lattice)
        assert policy.charge_factor(2, [0, 3]) == 1.0

    def test_top_tier_alone_with_subordinates_charged(self, lattice):
        """The top domain's every resize is visible below: always charged."""
        policy = TieredAccountingPolicy(lattice)
        assert policy.charge_factor(3, [2]) == 1.0

    def test_observers_of(self, lattice):
        policy = TieredAccountingPolicy(lattice)
        assert policy.observers_of(2, [3]) == [0, 1]
        assert policy.observers_of(0, [3]) == [1]

    def test_peer_model_reduces_to_always_charged(self):
        """With one flat tier, the policy degenerates to the base model."""
        policy = TieredAccountingPolicy(TierAssignment(tiers=(0, 0, 0)))
        for actor in range(3):
            for other in range(3):
                if other != actor:
                    assert policy.chargeable(actor, [other])
