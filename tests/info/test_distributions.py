"""Tests for repro.info.distributions."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DistributionError
from repro.info.distributions import (
    DiscreteDistribution,
    joint_from_conditional,
    marginals,
)


class TestConstruction:
    def test_basic_pmf(self):
        d = DiscreteDistribution({"a": 0.25, "b": 0.75})
        assert d.probability("a") == pytest.approx(0.25)
        assert d.probability("b") == pytest.approx(0.75)

    def test_zero_mass_outcomes_dropped(self):
        d = DiscreteDistribution({"a": 1.0, "b": 0.0})
        assert "b" not in d
        assert len(d) == 1

    def test_negative_probability_rejected(self):
        with pytest.raises(DistributionError):
            DiscreteDistribution({"a": 1.2, "b": -0.2})

    def test_unnormalized_rejected(self):
        with pytest.raises(DistributionError):
            DiscreteDistribution({"a": 0.3, "b": 0.3})

    def test_empty_rejected(self):
        with pytest.raises(DistributionError):
            DiscreteDistribution({})

    def test_tiny_residue_renormalized(self):
        d = DiscreteDistribution({"a": 0.5 + 1e-9, "b": 0.5})
        assert sum(p for _, p in d.items()) == pytest.approx(1.0, abs=1e-12)

    def test_uniform(self):
        d = DiscreteDistribution.uniform([1, 2, 3, 4])
        assert all(d.probability(x) == pytest.approx(0.25) for x in [1, 2, 3, 4])

    def test_uniform_collapses_duplicates(self):
        d = DiscreteDistribution.uniform([1, 1, 2])
        assert d.probability(1) == pytest.approx(0.5)

    def test_uniform_empty_rejected(self):
        with pytest.raises(DistributionError):
            DiscreteDistribution.uniform([])

    def test_delta(self):
        d = DiscreteDistribution.delta("x")
        assert d.probability("x") == 1.0
        assert len(d) == 1

    def test_from_counts(self):
        d = DiscreteDistribution.from_counts({"a": 3, "b": 1})
        assert d.probability("a") == pytest.approx(0.75)

    def test_from_counts_zero_total_rejected(self):
        with pytest.raises(DistributionError):
            DiscreteDistribution.from_counts({"a": 0})

    def test_from_samples(self):
        d = DiscreteDistribution.from_samples("aab")
        assert d.probability("a") == pytest.approx(2 / 3)


class TestInspection:
    def test_support(self):
        d = DiscreteDistribution({"a": 0.5, "b": 0.5})
        assert sorted(d.support) == ["a", "b"]

    def test_contains(self):
        d = DiscreteDistribution.delta(7)
        assert 7 in d
        assert 8 not in d

    def test_max_outcome(self):
        d = DiscreteDistribution({"a": 0.7, "b": 0.3})
        assert d.max_outcome() == "a"

    def test_almost_equal(self):
        a = DiscreteDistribution({"x": 0.5, "y": 0.5})
        b = DiscreteDistribution({"x": 0.5, "y": 0.5})
        c = DiscreteDistribution({"x": 0.6, "y": 0.4})
        assert a.almost_equal(b)
        assert not a.almost_equal(c)


class TestStatistics:
    def test_expectation_identity(self):
        d = DiscreteDistribution({1: 0.5, 3: 0.5})
        assert d.expectation() == pytest.approx(2.0)

    def test_expectation_function(self):
        d = DiscreteDistribution({1: 0.5, 3: 0.5})
        assert d.expectation(lambda x: x * x) == pytest.approx(5.0)

    def test_entropy_uniform(self):
        d = DiscreteDistribution.uniform(range(8))
        assert d.entropy_bits() == pytest.approx(3.0)

    def test_entropy_delta_is_zero(self):
        assert DiscreteDistribution.delta("a").entropy_bits() == 0.0


class TestTransformations:
    def test_map_pushforward(self):
        d = DiscreteDistribution.uniform([0, 1, 2, 3])
        even = d.map(lambda x: x % 2)
        assert even.probability(0) == pytest.approx(0.5)

    def test_condition(self):
        d = DiscreteDistribution.uniform([0, 1, 2, 3])
        c = d.condition(lambda x: x < 2)
        assert c.probability(0) == pytest.approx(0.5)
        assert 3 not in c

    def test_condition_on_null_event_rejected(self):
        d = DiscreteDistribution.uniform([0, 1])
        with pytest.raises(DistributionError):
            d.condition(lambda x: x > 10)

    def test_mix(self):
        a = DiscreteDistribution.delta("a")
        b = DiscreteDistribution.delta("b")
        m = a.mix(b, 0.25)
        assert m.probability("a") == pytest.approx(0.25)
        assert m.probability("b") == pytest.approx(0.75)

    def test_mix_bad_weight_rejected(self):
        a = DiscreteDistribution.delta("a")
        with pytest.raises(DistributionError):
            a.mix(a, 1.5)


class TestIntegerOperations:
    def test_convolve_dice(self):
        die = DiscreteDistribution.uniform(range(1, 7))
        two = die.convolve(die)
        assert two.probability(7) == pytest.approx(6 / 36)
        assert two.probability(2) == pytest.approx(1 / 36)

    def test_convolve_requires_integers(self):
        d = DiscreteDistribution.delta("a")
        with pytest.raises(DistributionError):
            d.convolve(d)

    def test_negate(self):
        d = DiscreteDistribution({1: 0.5, 2: 0.5})
        n = d.negate()
        assert n.probability(-1) == pytest.approx(0.5)

    def test_difference_symmetric_support(self):
        """delta_i - delta_{i-1} for IID delays is symmetric around 0."""
        delay = DiscreteDistribution.uniform([0, 1, 2])
        diff = delay.difference(delay)
        assert diff.probability(0) == pytest.approx(3 / 9)
        assert diff.probability(1) == pytest.approx(diff.probability(-1))
        assert diff.probability(2) == pytest.approx(diff.probability(-2))

    def test_shift(self):
        d = DiscreteDistribution.delta(5)
        assert d.shift(3).probability(8) == 1.0


class TestJointHelpers:
    def test_joint_from_conditional_and_marginals(self):
        px = DiscreteDistribution({0: 0.5, 1: 0.5})
        joint = joint_from_conditional(
            px,
            lambda x: DiscreteDistribution.delta(x + 10),
        )
        mx, my = marginals(joint)
        assert mx.probability(0) == pytest.approx(0.5)
        assert my.probability(10) == pytest.approx(0.5)

    def test_marginals_rejects_non_pairs(self):
        with pytest.raises(DistributionError):
            marginals(DiscreteDistribution.delta("not-a-pair"))


@given(
    weights=st.lists(
        st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=12
    )
)
def test_from_counts_normalizes(weights):
    counts = {i: w for i, w in enumerate(weights)}
    d = DiscreteDistribution.from_counts(counts)
    assert sum(p for _, p in d.items()) == pytest.approx(1.0, abs=1e-9)


@given(
    values=st.lists(st.integers(-50, 50), min_size=1, max_size=8, unique=True),
    offset=st.integers(-100, 100),
)
def test_shift_preserves_entropy(values, offset):
    d = DiscreteDistribution.uniform(values)
    assert d.shift(offset).entropy_bits() == pytest.approx(d.entropy_bits())


@given(
    a=st.lists(st.integers(0, 20), min_size=1, max_size=6, unique=True),
    b=st.lists(st.integers(0, 20), min_size=1, max_size=6, unique=True),
)
def test_convolution_entropy_at_least_max_component(a, b):
    """H(X + Y) >= max(H(X), H(Y)) for independent X, Y."""
    da = DiscreteDistribution.uniform(a)
    db = DiscreteDistribution.uniform(b)
    conv = da.convolve(db)
    assert conv.entropy_bits() >= max(da.entropy_bits(), db.entropy_bits()) - 1e-9


@given(st.integers(1, 64))
def test_uniform_entropy_is_log2_n(n):
    d = DiscreteDistribution.uniform(range(n))
    assert d.entropy_bits() == pytest.approx(math.log2(n))
