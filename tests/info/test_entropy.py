"""Tests for repro.info.entropy."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DistributionError
from repro.info.distributions import DiscreteDistribution, joint_from_conditional
from repro.info.entropy import (
    binary_entropy,
    conditional_entropy,
    entropy,
    entropy_bits_vec,
    entropy_gradient_vec,
    expected_conditional_entropy,
    joint_entropy,
    kl_divergence_bits,
    max_entropy,
    mutual_information,
    normalize_vec,
    uniform_vec,
)


def _random_simplex(rng: np.random.Generator, n: int) -> np.ndarray:
    return rng.dirichlet(np.ones(n))


class TestObjectLevel:
    def test_entropy_matches_formula(self):
        d = DiscreteDistribution({"a": 0.25, "b": 0.75})
        expected = -(0.25 * math.log2(0.25) + 0.75 * math.log2(0.75))
        assert entropy(d) == pytest.approx(expected)

    def test_joint_entropy_independent_adds(self):
        px = DiscreteDistribution.uniform([0, 1])
        joint = joint_from_conditional(
            px, lambda x: DiscreteDistribution.uniform(["u", "v"])
        )
        assert joint_entropy(joint) == pytest.approx(2.0)

    def test_conditional_entropy_deterministic_is_zero(self):
        px = DiscreteDistribution.uniform([0, 1, 2, 3])
        joint = joint_from_conditional(
            px, lambda x: DiscreteDistribution.delta(x * 2)
        )
        assert conditional_entropy(joint) == pytest.approx(0.0, abs=1e-12)

    def test_mutual_information_independent_is_zero(self):
        px = DiscreteDistribution.uniform([0, 1])
        joint = joint_from_conditional(
            px, lambda x: DiscreteDistribution.uniform(["u", "v"])
        )
        assert mutual_information(joint) == pytest.approx(0.0, abs=1e-12)

    def test_mutual_information_deterministic_equals_entropy(self):
        px = DiscreteDistribution.uniform([0, 1, 2, 3])
        joint = joint_from_conditional(
            px, lambda x: DiscreteDistribution.delta(str(x))
        )
        assert mutual_information(joint) == pytest.approx(2.0)

    def test_binary_entropy_half_is_one(self):
        assert binary_entropy(0.5) == pytest.approx(1.0)

    def test_binary_entropy_edges(self):
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0

    def test_binary_entropy_rejects_out_of_range(self):
        with pytest.raises(DistributionError):
            binary_entropy(1.5)

    def test_max_entropy(self):
        assert max_entropy(9) == pytest.approx(math.log2(9))

    def test_max_entropy_rejects_empty(self):
        with pytest.raises(DistributionError):
            max_entropy(0)

    def test_expected_conditional_entropy_figure3(self):
        """The scheduling-leakage term of the Figure 3 example: 0.5 bits."""
        marginal = DiscreteDistribution({"s1": 0.5, "s2": 0.5})
        conditionals = {
            "s1": DiscreteDistribution.uniform([(100, 200), (150, 300)]),
            "s2": DiscreteDistribution.delta((120, 240)),
        }
        assert expected_conditional_entropy(marginal, conditionals) == pytest.approx(0.5)

    def test_expected_conditional_entropy_missing_key(self):
        marginal = DiscreteDistribution.delta("s1")
        with pytest.raises(DistributionError):
            expected_conditional_entropy(marginal, {})


class TestArrayLevel:
    def test_entropy_vec_uniform(self):
        assert entropy_bits_vec(uniform_vec(16)) == pytest.approx(4.0)

    def test_entropy_vec_ignores_zeros(self):
        p = np.array([0.5, 0.5, 0.0])
        assert entropy_bits_vec(p) == pytest.approx(1.0)

    def test_gradient_matches_finite_differences(self):
        rng = np.random.default_rng(0)
        p = _random_simplex(rng, 6)
        grad = entropy_gradient_vec(p)
        eps = 1e-7
        for i in range(6):
            bumped = p.copy()
            bumped[i] += eps
            numeric = (entropy_bits_vec(bumped) - entropy_bits_vec(p)) / eps
            assert grad[i] == pytest.approx(numeric, rel=1e-3)

    def test_gradient_finite_at_zero(self):
        grad = entropy_gradient_vec(np.array([1.0, 0.0]))
        assert np.isfinite(grad).all()

    def test_kl_zero_for_identical(self):
        p = uniform_vec(4)
        assert kl_divergence_bits(p, p) == pytest.approx(0.0)

    def test_kl_positive_for_different(self):
        p = np.array([0.9, 0.1])
        q = np.array([0.5, 0.5])
        assert kl_divergence_bits(p, q) > 0

    def test_kl_infinite_on_support_mismatch(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert kl_divergence_bits(p, q) == math.inf

    def test_kl_shape_mismatch_rejected(self):
        with pytest.raises(DistributionError):
            kl_divergence_bits(uniform_vec(2), uniform_vec(3))

    def test_normalize_vec(self):
        v = normalize_vec(np.array([1.0, 3.0]))
        assert v.tolist() == pytest.approx([0.25, 0.75])

    def test_normalize_rejects_negative(self):
        with pytest.raises(DistributionError):
            normalize_vec(np.array([1.0, -1.0]))

    def test_normalize_rejects_zero_total(self):
        with pytest.raises(DistributionError):
            normalize_vec(np.zeros(3))

    def test_uniform_vec_rejects_empty(self):
        with pytest.raises(DistributionError):
            uniform_vec(0)


@given(st.integers(2, 32), st.integers(0, 2**31 - 1))
def test_entropy_bounded_by_log_support(n, seed):
    p = _random_simplex(np.random.default_rng(seed), n)
    h = entropy_bits_vec(p)
    assert -1e-9 <= h <= math.log2(n) + 1e-9


@given(st.integers(2, 16), st.integers(0, 2**31 - 1))
def test_kl_nonnegative(n, seed):
    rng = np.random.default_rng(seed)
    p = _random_simplex(rng, n)
    q = _random_simplex(rng, n) + 1e-9
    q = q / q.sum()
    assert kl_divergence_bits(p, q) >= -1e-9


@given(st.integers(2, 12), st.integers(0, 2**31 - 1))
def test_chain_rule_object_level(n, seed):
    """H(X, Y) = H(X) + H(Y|X) on random joints."""
    rng = np.random.default_rng(seed)
    px = DiscreteDistribution.from_counts(
        {i: float(w) for i, w in enumerate(rng.dirichlet(np.ones(n)))}
    )
    conditionals = {
        i: DiscreteDistribution.from_counts(
            {j: float(w) for j, w in enumerate(rng.dirichlet(np.ones(3)))}
        )
        for i in px.support
    }
    joint = joint_from_conditional(px, lambda x: conditionals[x])
    h_joint = joint_entropy(joint)
    h_cond = conditional_entropy(joint)
    assert h_joint == pytest.approx(entropy(px) + h_cond, abs=1e-9)
