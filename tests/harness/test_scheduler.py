"""Cell-major batching and the work-stealing supervisor scheduler.

Pins the PR's scheduling guarantees:

* **Chunking** — batch-compatible cells are dispatched as chunks
  (``batch_cells`` explicit or auto-sized per group), with per-chunk
  ``batch.dispatch`` events and exact batches/batched-cells telemetry;
  the ``fifo`` scheduler keeps legacy per-cell dispatch.
* **Work stealing** — a worker that drains its deque steals from the
  most loaded peer, rescuing campaigns whose cost estimates inverted
  reality; ``cell.steal`` trace events match the ``steals`` counter.
* **Dead-at-dispatch accounting** — a worker that dies before receiving
  its chunk is booked as exactly one crash (never a timeout), and the
  cell retries through the normal backoff path.
* **Bit identity** — steal/batched parallel results are byte-for-byte
  the serial results, cache disabled.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.harness.exec import (
    ExecutionEngine,
    MixSchemeCell,
    _Supervisor,
    cell_key,
    expected_cost,
    runtime_hints_from_entries,
)
from repro.harness.journal import JournalEntry, RunJournal
from repro.harness.runconfig import TEST
from repro.obs.trace import TRACE_ENV

PAIRS = (("gcc_2", "AES-128"), ("imagick_0", "SHA-256"))


class SleepCell:
    """A busy-wait cell with an (intentionally settable) cost hint."""

    def __init__(self, ident: int, seconds: float, hint: float):
        self.ident = ident
        self.seconds = seconds
        self.hint = hint

    @property
    def label(self) -> str:
        return f"sleep[{self.ident}]"

    def cache_token(self):
        return {"kind": "sleep", "ident": self.ident, "s": self.seconds}

    def cost_hint(self) -> float:
        return self.hint

    def execute(self):
        time.sleep(self.seconds)
        return self.ident

    @staticmethod
    def cycles_of(value):
        return None

    @staticmethod
    def encode(value):
        return {"v": value}

    @staticmethod
    def decode(payload):
        return payload["v"]


class BatchableCell(SleepCell):
    """A sleep cell that opts into cell-major chunking."""

    def batch_group(self):
        return ("batchable",)


def read_events(path, name):
    events = []
    for line in path.read_text().splitlines():
        record = json.loads(line)
        if record["kind"] == "event" and record["name"] == name:
            events.append(record)
    return events


class TestCostModel:
    def test_journal_hints_average_computed_walls(self):
        entries = {
            "a": JournalEntry("a", "mix[x]/untangle", "computed", 4.0, 1),
            "b": JournalEntry("b", "mix[y]/untangle", "computed", 2.0, 1),
            # Hits report ~zero wall and must not poison the estimate.
            "c": JournalEntry("c", "mix[z]/untangle", "hit", 0.0, 0),
            "d": JournalEntry("d", "mix[x]/static", "computed", 1.0, 1),
        }
        hints = runtime_hints_from_entries(entries)
        assert hints["untangle"] == pytest.approx(3.0)
        assert hints["static"] == pytest.approx(1.0)

    def test_expected_cost_prefers_history_then_hint_then_family(self):
        untangle = MixSchemeCell(pairs=PAIRS, scheme="untangle", profile=TEST)
        static = MixSchemeCell(pairs=PAIRS, scheme="static", profile=TEST)
        hinted = SleepCell(1, 0.0, hint=7.5)
        history = {"untangle": 12.0}
        assert expected_cost(untangle, history) == pytest.approx(12.0)
        # No history: the static family-weight table orders schemes.
        assert expected_cost(untangle, {}) > expected_cost(static, {})
        # A cell's own hint beats the family fallback.
        assert expected_cost(hinted, {}) == pytest.approx(7.5)

    def test_engine_runtime_hints_survive_missing_journal(self, tmp_path):
        engine = ExecutionEngine(
            jobs=1, journal=RunJournal(tmp_path / "absent.jsonl")
        )
        assert engine._runtime_hints() == {}
        assert ExecutionEngine(jobs=1)._runtime_hints() == {}


class TestChunking:
    def test_explicit_batch_cells_chunk_dispatch(self, monkeypatch, tmp_path):
        sink = tmp_path / "trace.jsonl"
        monkeypatch.setenv(TRACE_ENV, str(sink))
        cells = [BatchableCell(i, 0.01, hint=1.0) for i in range(6)]
        engine = ExecutionEngine(jobs=2, batch_cells=3)
        outcomes = engine.run(cells)
        assert all(o.status == "computed" for o in outcomes)
        snap = engine.telemetry.snapshot()
        assert snap["batches"] == 2
        assert snap["batched_cells"] == 6
        batch_events = read_events(sink, "batch.dispatch")
        assert len(batch_events) == 2
        assert all(e["attrs"]["cells"] == 3 for e in batch_events)

    def test_auto_cap_keeps_every_slot_busy_twice(self, tmp_path):
        # 12 compatible cells on 2 workers auto-chunk at 12 // (2*2) = 3,
        # i.e. 4 chunks — batching amortizes without costing balance.
        cells = [BatchableCell(i, 0.0, hint=1.0) for i in range(12)]
        engine = ExecutionEngine(jobs=2)
        engine.run(cells)
        snap = engine.telemetry.snapshot()
        assert snap["batches"] == 4
        assert snap["batched_cells"] == 12

    def test_cells_without_batch_group_stay_singletons(self):
        cells = [SleepCell(i, 0.0, hint=1.0) for i in range(5)]
        engine = ExecutionEngine(jobs=2, batch_cells=4)
        engine.run(cells)
        snap = engine.telemetry.snapshot()
        assert snap["batches"] == 5
        assert snap["batched_cells"] == 5

    def test_fifo_scheduler_dispatches_per_cell(self, monkeypatch, tmp_path):
        sink = tmp_path / "trace.jsonl"
        monkeypatch.setenv(TRACE_ENV, str(sink))
        cells = [BatchableCell(i, 0.0, hint=1.0) for i in range(6)]
        engine = ExecutionEngine(jobs=2, scheduler="fifo")
        outcomes = engine.run(cells)
        assert all(o.status == "computed" for o in outcomes)
        snap = engine.telemetry.snapshot()
        assert snap["batches"] == 6
        assert snap["batched_cells"] == 6
        assert snap["steals"] == 0
        assert not read_events(sink, "batch.dispatch")
        assert not read_events(sink, "cell.steal")

    def test_unknown_scheduler_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ExecutionEngine(jobs=2, scheduler="lifo")
        with pytest.raises(ConfigurationError):
            ExecutionEngine(jobs=2, batch_cells=-1)


class TestDeadAtDispatch:
    def test_single_crash_no_timeout(self, monkeypatch, tmp_path):
        """A worker dead before ``conn.send`` books one crash, zero
        timeouts, and one ordinary retry for the head cell.

        Regression: the send failure used to be swallowed with the
        deadline left armed, so the sweep could *also* book a
        ``worker.timeout`` for a cell the worker never received.
        """
        sink = tmp_path / "trace.jsonl"
        monkeypatch.setenv(TRACE_ENV, str(sink))
        engine = ExecutionEngine(
            jobs=2, timeout=30.0, retries=1, backoff_base=0.001
        )
        cells = [SleepCell(i, 0.01, hint=1.0) for i in range(2)]
        pending = [(i, cell, cell_key(cell)) for i, cell in enumerate(cells)]
        supervisor = _Supervisor(engine, pending)
        victim = supervisor.workers[0].process
        victim.kill()
        victim.join()
        outcomes = dict(supervisor.run())
        assert len(outcomes) == 2
        assert all(o.status == "computed" for o in outcomes.values())
        assert engine.telemetry.worker_crashes == 1
        assert engine.telemetry.worker_timeouts == 0
        # Exactly one cell burned exactly one crash retry.
        assert sorted(o.attempts for o in outcomes.values()) == [1, 2]
        assert not read_events(sink, "worker.timeout")
        assert len(read_events(sink, "worker.crash")) == 1


class TestWorkStealing:
    def test_stealing_rescues_inverted_cost_estimates(
        self, monkeypatch, tmp_path
    ):
        """Deterministic straggler: the seeding hints are inverted (one
        trivial cell claims to be enormous), so LPT parks all real work
        on one deque — only stealing can spread it back out."""
        sink = tmp_path / "trace.jsonl"
        monkeypatch.setenv(TRACE_ENV, str(sink))
        decoy = SleepCell(0, 0.05, hint=1000.0)
        real = [SleepCell(i, 0.3, hint=1.0) for i in range(1, 7)]
        engine = ExecutionEngine(jobs=2)
        outcomes = engine.run([decoy] + real)
        assert all(o.status == "computed" for o in outcomes)
        snap = engine.telemetry.snapshot()
        # Without stealing the six real cells run serially on one
        # worker (>= 1.8s); with stealing they split across both.
        assert snap["wall_seconds"] < 1.5
        assert snap["steals"] >= 1
        assert len(read_events(sink, "cell.steal")) == snap["steals"]

    def test_steal_results_bit_identical_to_serial(self):
        cells = [
            MixSchemeCell(pairs=PAIRS, scheme=scheme, profile=TEST)
            for scheme in ("static", "shared", "time")
        ]
        serial = ExecutionEngine(jobs=1).run(cells)
        batched = ExecutionEngine(jobs=3, batch_cells=2).run(cells)
        for a, b in zip(serial, batched):
            assert a.cell.encode(a.value) == b.cell.encode(b.value)


class TestResumeUnderSteal:
    def test_invariant_holds_with_replays_and_batches(self, tmp_path):
        journal = RunJournal(tmp_path / "journal.jsonl")
        old = [BatchableCell(i, 0.0, hint=1.0) for i in range(6)]
        first = ExecutionEngine(jobs=4, journal=journal)
        first.run(old)

        new = [BatchableCell(i, 0.0, hint=1.0) for i in range(6, 10)]
        second = ExecutionEngine(
            jobs=4, journal=RunJournal(journal.path), resume=True
        )
        outcomes = second.run(old + new)
        assert all(o.ok for o in outcomes)
        snap = second.telemetry.snapshot()
        assert snap["replayed"] == 6
        assert snap["computed"] == 4
        assert (
            snap["computed"] + snap["hit"] + snap["replayed"] + snap["failed"]
            == snap["total"]
        )
        # Replayed cells never reach the supervisor: only the four new
        # cells were chunked and dispatched.
        assert snap["batched_cells"] == 4
