"""Cell-major batching and the work-stealing supervisor scheduler.

Pins the PR's scheduling guarantees:

* **Chunking** — batch-compatible cells are dispatched as chunks
  (``batch_cells`` explicit or auto-sized per group), with per-chunk
  ``batch.dispatch`` events and exact batches/batched-cells telemetry;
  the ``fifo`` scheduler keeps legacy per-cell dispatch.
* **Work stealing** — a worker that drains its deque steals from the
  most loaded peer, rescuing campaigns whose cost estimates inverted
  reality; ``cell.steal`` trace events match the ``steals`` counter.
* **Dead-at-dispatch accounting** — a worker that dies before receiving
  its chunk is booked as exactly one crash (never a timeout), and the
  cell retries through the normal backoff path.
* **Bit identity** — steal/batched parallel results are byte-for-byte
  the serial results, cache disabled.
"""

from __future__ import annotations

import json
import time
from collections import deque

import pytest

from repro.harness.exec import (
    ExecutionEngine,
    MixSchemeCell,
    _Chunk,
    _Supervisor,
    cell_key,
    expected_cost,
    runtime_hints_from_entries,
)
from repro.harness.journal import JournalEntry, RunJournal
from repro.harness.runconfig import TEST
from repro.obs.trace import TRACE_ENV

PAIRS = (("gcc_2", "AES-128"), ("imagick_0", "SHA-256"))


class SleepCell:
    """A busy-wait cell with an (intentionally settable) cost hint."""

    def __init__(self, ident: int, seconds: float, hint: float):
        self.ident = ident
        self.seconds = seconds
        self.hint = hint

    @property
    def label(self) -> str:
        return f"sleep[{self.ident}]"

    def cache_token(self):
        return {"kind": "sleep", "ident": self.ident, "s": self.seconds}

    def cost_hint(self) -> float:
        return self.hint

    def execute(self):
        time.sleep(self.seconds)
        return self.ident

    @staticmethod
    def cycles_of(value):
        return None

    @staticmethod
    def encode(value):
        return {"v": value}

    @staticmethod
    def decode(payload):
        return payload["v"]


class BatchableCell(SleepCell):
    """A sleep cell that opts into cell-major chunking."""

    def batch_group(self):
        return ("batchable",)


class StackableCell(BatchableCell):
    """A batchable cell that also opts into lane-stacked execution.

    ``execute`` and ``execute_stacked`` return distinguishable values,
    so a test can prove which path actually ran a cell.
    """

    def batch_group(self):
        return ("stackable",)

    def execute(self):
        return f"seq:{self.ident}"

    @staticmethod
    def execute_stacked(cells, max_lanes=None):
        return [f"stacked:{cell.ident}" for cell in cells]


class FlakyStackCell(StackableCell):
    """Stacked execution fails exactly the odd-numbered lanes."""

    def batch_group(self):
        return ("flaky-stack",)

    @staticmethod
    def execute_stacked(cells, max_lanes=None):
        return [
            RuntimeError("lane exploded")
            if cell.ident % 2
            else f"stacked:{cell.ident}"
            for cell in cells
        ]


def _planner(engine, hints, slots=2):
    """A supervisor stripped to its planning state — no worker spawns."""
    supervisor = _Supervisor.__new__(_Supervisor)
    supervisor.engine = engine
    supervisor.deques = [deque() for _ in range(slots)]
    supervisor.hints = hints
    return supervisor


def read_events(path, name):
    events = []
    for line in path.read_text().splitlines():
        record = json.loads(line)
        if record["kind"] == "event" and record["name"] == name:
            events.append(record)
    return events


class TestCostModel:
    def test_journal_hints_average_computed_walls(self):
        entries = {
            "a": JournalEntry("a", "mix[x]/untangle", "computed", 4.0, 1),
            "b": JournalEntry("b", "mix[y]/untangle", "computed", 2.0, 1),
            # Hits report ~zero wall and must not poison the estimate.
            "c": JournalEntry("c", "mix[z]/untangle", "hit", 0.0, 0),
            "d": JournalEntry("d", "mix[x]/static", "computed", 1.0, 1),
        }
        hints = runtime_hints_from_entries(entries)
        assert hints["untangle"] == pytest.approx(3.0)
        assert hints["static"] == pytest.approx(1.0)

    def test_expected_cost_prefers_history_then_hint_then_family(self):
        untangle = MixSchemeCell(pairs=PAIRS, scheme="untangle", profile=TEST)
        static = MixSchemeCell(pairs=PAIRS, scheme="static", profile=TEST)
        hinted = SleepCell(1, 0.0, hint=7.5)
        history = {"untangle": 12.0}
        assert expected_cost(untangle, history) == pytest.approx(12.0)
        # No history: the static family-weight table orders schemes.
        assert expected_cost(untangle, {}) > expected_cost(static, {})
        # A cell's own hint beats the family fallback.
        assert expected_cost(hinted, {}) == pytest.approx(7.5)

    def test_engine_runtime_hints_survive_missing_journal(self, tmp_path):
        engine = ExecutionEngine(
            jobs=1, journal=RunJournal(tmp_path / "absent.jsonl")
        )
        assert engine._runtime_hints() == {}
        assert ExecutionEngine(jobs=1)._runtime_hints() == {}


class TestChunking:
    def test_explicit_batch_cells_chunk_dispatch(self, monkeypatch, tmp_path):
        sink = tmp_path / "trace.jsonl"
        monkeypatch.setenv(TRACE_ENV, str(sink))
        cells = [BatchableCell(i, 0.01, hint=1.0) for i in range(6)]
        engine = ExecutionEngine(jobs=2, batch_cells=3)
        outcomes = engine.run(cells)
        assert all(o.status == "computed" for o in outcomes)
        snap = engine.telemetry.snapshot()
        assert snap["batches"] == 2
        assert snap["batched_cells"] == 6
        batch_events = read_events(sink, "batch.dispatch")
        assert len(batch_events) == 2
        assert all(e["attrs"]["cells"] == 3 for e in batch_events)

    def test_auto_cap_keeps_every_slot_busy_twice(self, tmp_path):
        # 12 compatible cells on 2 workers auto-chunk at 12 // (2*2) = 3,
        # i.e. 4 chunks — batching amortizes without costing balance.
        cells = [BatchableCell(i, 0.0, hint=1.0) for i in range(12)]
        engine = ExecutionEngine(jobs=2)
        engine.run(cells)
        snap = engine.telemetry.snapshot()
        assert snap["batches"] == 4
        assert snap["batched_cells"] == 12

    def test_cells_without_batch_group_stay_singletons(self):
        cells = [SleepCell(i, 0.0, hint=1.0) for i in range(5)]
        engine = ExecutionEngine(jobs=2, batch_cells=4)
        engine.run(cells)
        snap = engine.telemetry.snapshot()
        assert snap["batches"] == 5
        assert snap["batched_cells"] == 5

    def test_fifo_scheduler_dispatches_per_cell(self, monkeypatch, tmp_path):
        sink = tmp_path / "trace.jsonl"
        monkeypatch.setenv(TRACE_ENV, str(sink))
        cells = [BatchableCell(i, 0.0, hint=1.0) for i in range(6)]
        engine = ExecutionEngine(jobs=2, scheduler="fifo")
        outcomes = engine.run(cells)
        assert all(o.status == "computed" for o in outcomes)
        snap = engine.telemetry.snapshot()
        assert snap["batches"] == 6
        assert snap["batched_cells"] == 6
        assert snap["steals"] == 0
        assert not read_events(sink, "batch.dispatch")
        assert not read_events(sink, "cell.steal")

    def test_unknown_scheduler_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ExecutionEngine(jobs=2, scheduler="lifo")
        with pytest.raises(ConfigurationError):
            ExecutionEngine(jobs=2, batch_cells=-1)


class TestDeadAtDispatch:
    def test_single_crash_no_timeout(self, monkeypatch, tmp_path):
        """A worker dead before ``conn.send`` books one crash, zero
        timeouts, and one ordinary retry for the head cell.

        Regression: the send failure used to be swallowed with the
        deadline left armed, so the sweep could *also* book a
        ``worker.timeout`` for a cell the worker never received.
        """
        sink = tmp_path / "trace.jsonl"
        monkeypatch.setenv(TRACE_ENV, str(sink))
        engine = ExecutionEngine(
            jobs=2, timeout=30.0, retries=1, backoff_base=0.001
        )
        cells = [SleepCell(i, 0.01, hint=1.0) for i in range(2)]
        pending = [(i, cell, cell_key(cell)) for i, cell in enumerate(cells)]
        supervisor = _Supervisor(engine, pending)
        victim = supervisor.workers[0].process
        victim.kill()
        victim.join()
        outcomes = dict(supervisor.run())
        assert len(outcomes) == 2
        assert all(o.status == "computed" for o in outcomes.values())
        assert engine.telemetry.worker_crashes == 1
        assert engine.telemetry.worker_timeouts == 0
        # Exactly one cell burned exactly one crash retry.
        assert sorted(o.attempts for o in outcomes.values()) == [1, 2]
        assert not read_events(sink, "worker.timeout")
        assert len(read_events(sink, "worker.crash")) == 1


class TestWorkStealing:
    def test_stealing_rescues_inverted_cost_estimates(
        self, monkeypatch, tmp_path
    ):
        """Deterministic straggler: the seeding hints are inverted (one
        trivial cell claims to be enormous), so LPT parks all real work
        on one deque — only stealing can spread it back out."""
        sink = tmp_path / "trace.jsonl"
        monkeypatch.setenv(TRACE_ENV, str(sink))
        decoy = SleepCell(0, 0.05, hint=1000.0)
        real = [SleepCell(i, 0.3, hint=1.0) for i in range(1, 7)]
        engine = ExecutionEngine(jobs=2)
        outcomes = engine.run([decoy] + real)
        assert all(o.status == "computed" for o in outcomes)
        snap = engine.telemetry.snapshot()
        # Without stealing the six real cells run serially on one
        # worker (>= 1.8s); with stealing they split across both.
        assert snap["wall_seconds"] < 1.5
        assert snap["steals"] >= 1
        assert len(read_events(sink, "cell.steal")) == snap["steals"]

    def test_steal_results_bit_identical_to_serial(self):
        cells = [
            MixSchemeCell(pairs=PAIRS, scheme=scheme, profile=TEST)
            for scheme in ("static", "shared", "time")
        ]
        serial = ExecutionEngine(jobs=1).run(cells)
        batched = ExecutionEngine(jobs=3, batch_cells=2).run(cells)
        for a, b in zip(serial, batched):
            assert a.cell.encode(a.value) == b.cell.encode(b.value)


class TestResumeUnderSteal:
    def test_invariant_holds_with_replays_and_batches(self, tmp_path):
        journal = RunJournal(tmp_path / "journal.jsonl")
        old = [BatchableCell(i, 0.0, hint=1.0) for i in range(6)]
        first = ExecutionEngine(jobs=4, journal=journal)
        first.run(old)

        new = [BatchableCell(i, 0.0, hint=1.0) for i in range(6, 10)]
        second = ExecutionEngine(
            jobs=4, journal=RunJournal(journal.path), resume=True
        )
        outcomes = second.run(old + new)
        assert all(o.ok for o in outcomes)
        snap = second.telemetry.snapshot()
        assert snap["replayed"] == 6
        assert snap["computed"] == 4
        assert (
            snap["computed"] + snap["hit"] + snap["replayed"] + snap["failed"]
            == snap["total"]
        )
        # Replayed cells never reach the supervisor: only the four new
        # cells were chunked and dispatched.
        assert snap["batched_cells"] == 4


class TestHintGranularity:
    """Journal runtime hints: label, (family, profile), legacy family."""

    def test_profiled_entries_build_label_and_profile_keys(self):
        entries = {
            "a": JournalEntry(
                "a", "mix[x]/untangle", "computed", 4.0, 1, profile="test"
            ),
            "b": JournalEntry(
                "b", "mix[y]/untangle", "computed", 2.0, 1, profile="test"
            ),
            "c": JournalEntry(
                "c", "mix[x]/untangle", "computed", 40.0, 1, profile="bench"
            ),
        }
        hints = runtime_hints_from_entries(entries)
        assert hints[("untangle", "test")] == pytest.approx(3.0)
        assert hints[("untangle", "bench")] == pytest.approx(40.0)
        # Labels repeat across profiles; the label mean pools them.
        assert hints["mix[x]/untangle"] == pytest.approx(22.0)
        # Profiled entries never feed the legacy bare-family key.
        assert "untangle" not in hints

    def test_expected_cost_prefers_label_then_profile_then_family(self):
        cell = MixSchemeCell(pairs=PAIRS, scheme="untangle", profile=TEST)
        label_hints = {
            cell.label: 5.0,
            ("untangle", "test"): 9.0,
            "untangle": 2.0,
        }
        assert expected_cost(cell, label_hints) == pytest.approx(5.0)
        del label_hints[cell.label]
        assert expected_cost(cell, label_hints) == pytest.approx(9.0)
        del label_hints[("untangle", "test")]
        # Legacy journals (no profile recorded) still order the seeding.
        assert expected_cost(cell, label_hints) == pytest.approx(2.0)

    def test_wrong_profile_history_is_ignored(self):
        cell = MixSchemeCell(pairs=PAIRS, scheme="untangle", profile=TEST)
        # Only bench-profile history exists: a test-profile campaign
        # must fall through to the family weight, not inherit walls
        # that are orders of magnitude off.
        bench_only = {("untangle", "bench"): 1000.0}
        assert expected_cost(cell, bench_only) == expected_cost(cell, {})


class TestCostAwarePlanning:
    def _cells(self, count):
        return [BatchableCell(i, 0.0, hint=1.0) for i in range(count)]

    @staticmethod
    def _pending(cells):
        return [(i, cell, cell_key(cell)) for i, cell in enumerate(cells)]

    def test_skewed_group_splits_stragglers_out(self):
        cells = self._cells(6)
        hints = {cell.label: 1.0 for cell in cells}
        hints[cells[2].label] = 10.0  # > 2x the median of 1.0
        planner = _planner(ExecutionEngine(jobs=2, batch_cells=6), hints)
        chunks = planner._plan_chunks(self._pending(cells))
        assert sorted(len(chunk.cells) for chunk in chunks) == [1, 5]
        singleton = next(c for c in chunks if len(c.cells) == 1)
        assert singleton.cells[0][1] is cells[2]
        assert singleton.cost == pytest.approx(10.0)
        # The remaining chunk preserves input order.
        rest = next(c for c in chunks if len(c.cells) == 5)
        assert [task[1].ident for task in rest.cells] == [0, 1, 3, 4, 5]

    def test_uniform_hints_never_split(self):
        cells = self._cells(6)
        hints = {cell.label: 3.0 for cell in cells}
        planner = _planner(ExecutionEngine(jobs=2, batch_cells=6), hints)
        chunks = planner._plan_chunks(self._pending(cells))
        assert [len(chunk.cells) for chunk in chunks] == [6]

    def test_skew_below_threshold_keeps_group_whole(self):
        cells = self._cells(5)
        hints = {cell.label: 1.0 for cell in cells}
        hints[cells[0].label] = 2.0  # exactly 2x median: not a straggler
        planner = _planner(ExecutionEngine(jobs=2, batch_cells=5), hints)
        chunks = planner._plan_chunks(self._pending(cells))
        assert [len(chunk.cells) for chunk in chunks] == [5]

    def test_split_runs_end_to_end(self, tmp_path):
        """A journal seeded with one straggler label reshapes dispatch."""
        journal = RunJournal(tmp_path / "journal.jsonl")
        cells = [BatchableCell(i, 0.0, hint=1.0) for i in range(6)]
        for cell in cells:
            journal.record(
                JournalEntry(
                    cell_key(cell),
                    cell.label,
                    "computed",
                    9.0 if cell.ident == 0 else 1.0,
                    1,
                )
            )
        journal.close()
        engine = ExecutionEngine(
            jobs=2, batch_cells=6, journal=RunJournal(journal.path)
        )
        outcomes = engine.run(cells)
        assert all(o.status == "computed" for o in outcomes)
        snap = engine.telemetry.snapshot()
        assert snap["batches"] == 2  # straggler singleton + the rest
        assert snap["batched_cells"] == 6


class TestPeerLoad:
    def _supervisor_with_deques(self, deques):
        supervisor = _planner(
            ExecutionEngine(jobs=2), hints={}, slots=len(deques)
        )
        for slot, chunks in enumerate(deques):
            supervisor.deques[slot].extend(chunks)
        return supervisor

    @staticmethod
    def _chunk(ident, cost):
        cell = BatchableCell(ident, 0.0, hint=cost)
        return _Chunk(cells=[(ident, cell, f"k{ident}")], cost=cost)

    def test_victim_is_costliest_peer_not_longest(self):
        heavy = [self._chunk(0, 10.0)]
        many = [self._chunk(i, 1.0) for i in range(1, 4)]
        supervisor = self._supervisor_with_deques([[], heavy, many])
        assert supervisor._peer_load(1) == (10.0, 1)
        assert supervisor._peer_load(2) == (3.0, 3)
        stolen = supervisor._steal(0)
        assert stolen is not None
        assert stolen[0][0] == 0  # came from the heavy deque
        assert supervisor.engine.telemetry.steals == 1

    def test_chunk_count_breaks_cost_ties(self):
        one = [self._chunk(0, 2.0)]
        two = [self._chunk(1, 1.0), self._chunk(2, 1.0)]
        supervisor = self._supervisor_with_deques([[], one, two])
        stolen = supervisor._steal(0)
        # Equal cost: the peer with more stealable units is the victim
        # (its back chunk is cheapest, so ident 2 comes over).
        assert stolen[0][0] == 2


class TestStackedDispatch:
    def test_parallel_chunks_route_through_execute_stacked(self):
        cells = [StackableCell(i, 0.0, hint=1.0) for i in range(6)]
        engine = ExecutionEngine(jobs=2, batch_cells=3, stack_lanes=0)
        outcomes = engine.run(cells)
        assert [o.value for o in outcomes] == [
            f"stacked:{i}" for i in range(6)
        ]
        snap = engine.telemetry.snapshot()
        assert "stacked_cells" in snap and "lane_divergences" in snap

    def test_serial_groups_route_through_execute_stacked(self):
        cells = [StackableCell(i, 0.0, hint=1.0) for i in range(4)]
        engine = ExecutionEngine(jobs=1, stack_lanes=0)
        outcomes = engine.run(cells)
        assert [o.value for o in outcomes] == [
            f"stacked:{i}" for i in range(4)
        ]

    def test_stacking_off_by_default(self):
        cells = [StackableCell(i, 0.0, hint=1.0) for i in range(4)]
        engine = ExecutionEngine(jobs=1)
        outcomes = engine.run(cells)
        assert [o.value for o in outcomes] == [f"seq:{i}" for i in range(4)]

    def test_failed_lane_falls_back_and_retries_sequentially(self):
        cells = [FlakyStackCell(i, 0.0, hint=1.0) for i in range(4)]
        engine = ExecutionEngine(jobs=1, stack_lanes=0, backoff_base=0.0)
        outcomes = engine.run(cells)
        assert all(o.status == "computed" for o in outcomes)
        # Even lanes came out of the stack; odd lanes were isolated
        # failures re-run through the sequential path.
        assert [o.value for o in outcomes] == [
            "stacked:0", "seq:1", "stacked:2", "seq:3"
        ]

    def test_real_cells_book_stacked_telemetry(self):
        cells = [
            MixSchemeCell(pairs=PAIRS, scheme="static", profile=TEST),
            MixSchemeCell(
                pairs=(("xz_1", "AES-128"), ("mcf_0", "SHA-256")),
                scheme="static",
                profile=TEST,
            ),
        ]
        engine = ExecutionEngine(jobs=1, stack_lanes=0)
        outcomes = engine.run(cells)
        assert all(o.status == "computed" for o in outcomes)
        assert engine.telemetry.snapshot()["stacked_cells"] == 2

    def test_stack_lanes_validation(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ExecutionEngine(jobs=1, stack_lanes=-1)
