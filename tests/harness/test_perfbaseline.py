"""Tests for the kernel perf-regression checker."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.harness.perfbaseline import compare, load_bench, main


def payload(raw_speedup=4.0, cells=None, fmt=1):
    cells = cells if cells is not None else {"static": 3.0, "untangle": 4.5}
    return {
        "format": fmt,
        "quick": False,
        "reps": 3,
        "raw_kernel": {"speedup": raw_speedup},
        "end_to_end": {
            "cells": {
                scheme: {
                    "reference_seconds": speedup,
                    "batched_seconds": 1.0,
                    "speedup": speedup,
                    "identical": True,
                }
                for scheme, speedup in cells.items()
            }
        },
    }


def campaign_payload(stolen=1.8, batched=2.0, identical=True):
    return {
        "format": 1,
        "kind": "campaign",
        "quick": False,
        "reps": 3,
        "percell": {"seconds": 4.0, "identical": identical},
        "stolen": {
            "seconds": 4.0 / stolen,
            "speedup": stolen,
            "identical": identical,
        },
        "batched": {
            "seconds": 4.0 / batched,
            "speedup": batched,
            "identical": identical,
        },
    }


def overhead_payload(speedup=6.0, warm=3.5, identical=True):
    return {
        "format": 1,
        "kind": "overhead",
        "quick": False,
        "reps": 3,
        "off": {"seconds": 0.1, "cells_per_sec": 20000.0},
        "percell": {
            "seconds": 2.0,
            "cells_per_sec": 1000.0,
            "warm_seconds": 1.0,
            "identical": identical,
        },
        "grouped": {
            "seconds": 2.0 / speedup,
            "cells_per_sec": 1000.0 * speedup,
            "speedup": speedup,
            "warm_seconds": 1.0 / warm,
            "warm_speedup": warm,
            "identical": identical,
        },
    }


class TestCompare:
    def test_no_regression_when_equal(self):
        assert compare(payload(), payload()) == []

    def test_faster_is_never_a_regression(self):
        current = payload(raw_speedup=8.0, cells={"static": 9.0, "untangle": 9.0})
        assert compare(current, payload()) == []

    def test_loss_within_tolerance_passes(self):
        current = payload(cells={"static": 3.0 * 0.75, "untangle": 4.5})
        assert compare(current, payload(), tolerance=0.30) == []

    def test_loss_beyond_tolerance_is_flagged(self):
        current = payload(cells={"static": 3.0 * 0.5, "untangle": 4.5})
        regressions = compare(current, payload(), tolerance=0.30)
        assert [r.measurement for r in regressions] == ["end_to_end/static"]
        assert regressions[0].loss == pytest.approx(0.5)
        assert "below the baseline" in str(regressions[0])

    def test_raw_kernel_regression_is_flagged(self):
        current = payload(raw_speedup=1.0)
        regressions = compare(current, payload(), tolerance=0.30)
        assert [r.measurement for r in regressions] == ["raw_kernel"]

    def test_non_identical_results_outrank_timing(self):
        current = payload()
        current["end_to_end"]["cells"]["static"]["identical"] = False
        regressions = compare(current, payload())
        assert any("non-identical" in str(r) for r in regressions)

    def test_schemes_only_in_one_payload_are_skipped(self):
        baseline = payload(cells={"static": 3.0, "retired_scheme": 99.0})
        current = payload(cells={"static": 3.0, "new_scheme": 0.1})
        assert compare(current, baseline) == []

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ConfigurationError):
            compare(payload(), payload(), tolerance=1.5)

    def test_campaign_kind_compares_its_own_measurements(self):
        assert compare(campaign_payload(), campaign_payload()) == []
        regressions = compare(
            campaign_payload(stolen=0.9), campaign_payload(), tolerance=0.30
        )
        assert [r.measurement for r in regressions] == ["campaign/stolen"]

    def test_campaign_identity_failure_outranks_timing(self):
        current = campaign_payload()
        current["batched"]["identical"] = False
        regressions = compare(current, campaign_payload())
        assert any(r.measurement == "campaign/batched" for r in regressions)
        assert any("non-identical" in str(r) for r in regressions)

    def test_overhead_kind_compares_its_own_measurements(self):
        assert compare(overhead_payload(), overhead_payload()) == []
        regressions = compare(
            overhead_payload(speedup=2.0), overhead_payload(), tolerance=0.30
        )
        assert [r.measurement for r in regressions] == ["overhead/fastpath"]
        regressions = compare(
            overhead_payload(warm=1.0), overhead_payload(), tolerance=0.30
        )
        assert [r.measurement for r in regressions] == ["overhead/warm"]

    def test_overhead_identity_failure_outranks_timing(self):
        current = overhead_payload(identical=False)
        regressions = compare(current, overhead_payload())
        assert any(r.measurement == "overhead/grouped" for r in regressions)
        assert any("non-identical" in str(r) for r in regressions)

    def test_cross_kind_comparison_rejected(self):
        with pytest.raises(ConfigurationError, match="cannot compare"):
            compare(campaign_payload(), payload())
        store = {"format": 1, "kind": "store"}
        with pytest.raises(ConfigurationError, match="cannot compare"):
            compare(store, campaign_payload())


class TestLoadBench:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(payload()))
        assert load_bench(path)["raw_kernel"]["speedup"] == 4.0

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_bench(tmp_path / "nope.json")

    def test_not_json(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text("{truncated")
        with pytest.raises(ConfigurationError, match="not JSON"):
            load_bench(path)

    def test_wrong_format_version(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(payload(fmt=99)))
        with pytest.raises(ConfigurationError, match="format"):
            load_bench(path)


class TestCli:
    def _write(self, tmp_path, name, data):
        path = tmp_path / name
        path.write_text(json.dumps(data))
        return path

    def test_pass_exit_zero(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", payload())
        cur = self._write(tmp_path, "cur.json", payload())
        assert main(["--baseline", str(base), "--current", str(cur)]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_regression_exit_one(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", payload())
        cur = self._write(
            tmp_path, "cur.json", payload(cells={"static": 0.9, "untangle": 4.5})
        )
        assert main(["--baseline", str(base), "--current", str(cur)]) == 1
        assert "REGRESSION" in capsys.readouterr().err
