"""Tests for the mix-experiment harness (TEST profile: small and fast)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.harness.experiment import (
    SCHEME_NAMES,
    make_scheme,
    mix_labels,
    run_custom_mix,
    run_mix_scheme,
)
from repro.harness.runconfig import TEST

PAIRS = [("gcc_2", "AES-128"), ("imagick_0", "SHA-256")]


@pytest.fixture(scope="module")
def two_domain_profile():
    return TEST


@pytest.fixture(scope="module")
def custom_result(two_domain_profile):
    return run_custom_mix(
        PAIRS, two_domain_profile, schemes=("static", "time", "untangle")
    )


class TestMakeScheme:
    def test_all_names_construct(self, two_domain_profile):
        for name in SCHEME_NAMES:
            scheme = make_scheme(name, two_domain_profile, 2)
            assert scheme.arch.num_cores == 2

    def test_unknown_name(self, two_domain_profile):
        with pytest.raises(ConfigurationError):
            make_scheme("nope", two_domain_profile, 2)


class TestRunMixScheme:
    def test_static_run(self, two_domain_profile):
        result = run_mix_scheme(PAIRS, "static", two_domain_profile)
        assert result.scheme == "static"
        assert len(result.workloads) == 2
        assert all(w.ipc > 0 for w in result.workloads)
        assert all(w.assessments == 0 for w in result.workloads)

    def test_workload_lookup(self, custom_result):
        run = custom_result.runs["static"]
        assert run.workload("gcc_2+AES-128").label == "gcc_2+AES-128"
        with pytest.raises(ConfigurationError):
            run.workload("missing")


class TestDuplicatePairs:
    """Mixes may repeat a (spec, crypto) pair; labels must stay unique."""

    def test_mix_labels_disambiguates_repeats(self):
        pairs = [
            ("gcc_2", "AES-128"),
            ("gcc_2", "AES-128"),
            ("imagick_0", "SHA-256"),
            ("gcc_2", "AES-128"),
        ]
        assert mix_labels(pairs) == [
            "gcc_2+AES-128",
            "gcc_2+AES-128#2",
            "imagick_0+SHA-256",
            "gcc_2+AES-128#3",
        ]

    def test_duplicate_pair_mix_keeps_both_workloads(self):
        """Regression: duplicate labels collapsed in the normalized-IPC
        baseline dict, and workload() silently returned the first match."""
        pairs = [("gcc_2", "AES-128"), ("gcc_2", "AES-128")]
        result = run_custom_mix(pairs, TEST, schemes=("static",))
        assert result.labels == ["gcc_2+AES-128", "gcc_2+AES-128#2"]
        run = result.runs["static"]
        assert [w.label for w in run.workloads] == result.labels
        assert run.workload("gcc_2+AES-128#2") is run.workloads[1]
        normalized = result.normalized_ipc("static")
        assert set(normalized) == set(result.labels)
        assert all(v == pytest.approx(1.0) for v in normalized.values())


class TestMixResult:
    def test_labels_in_figure_order(self, custom_result):
        assert custom_result.labels == ["gcc_2+AES-128", "imagick_0+SHA-256"]

    def test_normalized_ipc_static_is_one(self, custom_result):
        normalized = custom_result.normalized_ipc("static")
        assert all(v == pytest.approx(1.0) for v in normalized.values())

    def test_geomean_of_static_is_one(self, custom_result):
        assert custom_result.geomean_speedup("static") == pytest.approx(1.0)

    def test_time_charges_conservative_bits(self, custom_result):
        run = custom_result.runs["time"]
        for workload in run.workloads:
            if workload.assessments:
                assert workload.bits_per_assessment == pytest.approx(
                    math.log2(9)
                )

    def test_untangle_leaks_less_than_time(self, custom_result):
        time_run = custom_result.runs["time"]
        untangle_run = custom_result.runs["untangle"]
        assert (
            untangle_run.mean_bits_per_assessment
            < time_run.mean_bits_per_assessment
        )

    def test_partition_quartiles_are_bounded_by_supported_sizes(
        self, custom_result, two_domain_profile
    ):
        # The min/max are exact observed samples (so supported sizes);
        # q1/median/q3 are linearly interpolated between neighboring
        # samples and must only stay within the observed envelope.
        sizes = set(two_domain_profile.arch(2).supported_partition_lines)
        for run in custom_result.runs.values():
            for workload in run.workloads:
                low, q1, median, q3, high = workload.partition_quartiles
                assert low in sizes
                assert high in sizes
                assert low <= q1 <= median <= q3 <= high


def _workload_stub(label: str, ipc: float):
    from repro.harness.experiment import WorkloadResult

    return WorkloadResult(
        label=label,
        ipc=ipc,
        assessments=0,
        visible_actions=0,
        leakage_bits=0.0,
        partition_quartiles=(0.0, 0.0, 0.0, 0.0, 0.0),
    )


class TestGeomeanRegressions:
    """Satellite regressions: non-positive IPC ratios must never be
    silently dropped from the geomean, and a zero-IPC static baseline
    must refuse to normalize rather than emit a placeholder."""

    def _result(self, static_ipcs, scheme_ipcs):
        from repro.harness.experiment import MixResult, SchemeRunResult

        labels = [f"w{i}" for i in range(len(static_ipcs))]
        result = MixResult(mix_id=99, labels=labels)
        result.runs["static"] = SchemeRunResult(
            "static",
            [_workload_stub(l, v) for l, v in zip(labels, static_ipcs)],
            total_cycles=100,
        )
        result.runs["x"] = SchemeRunResult(
            "x",
            [_workload_stub(l, v) for l, v in zip(labels, scheme_ipcs)],
            total_cycles=100,
        )
        return result

    def test_missing_static_run_raises(self):
        from repro.harness.experiment import MixResult

        result = MixResult(mix_id=99, labels=[])
        with pytest.raises(ConfigurationError, match="static"):
            result.normalized_ipc("x")

    def test_zero_ipc_baseline_raises_naming_the_workload(self):
        result = self._result([1.0, 0.0], [1.0, 1.0])
        with pytest.raises(ConfigurationError, match="w1"):
            result.normalized_ipc("x")
        with pytest.raises(ConfigurationError, match="w1"):
            result.geomean_speedup("x")

    def test_stalled_scheme_workload_zeroes_the_geomean(self):
        # A scheme that starves one workload to zero IPC must report
        # 0.0 — not the geomean of the surviving workloads (which used
        # to *reward* starvation).
        result = self._result([1.0, 1.0], [4.0, 0.0])
        assert result.geomean_speedup("x") == 0.0

    def test_all_positive_geomean_is_exact(self):
        result = self._result([1.0, 1.0], [2.0, 0.5])
        assert result.geomean_speedup("x") == pytest.approx(1.0)
