"""Fault-injection suite: prove every recovery path of the runner.

Each test injects one of the failures the campaign runner claims to
survive — worker crash, worker hang past the deadline, corrupt cache
entry, infant-mortality worker — and asserts full recovery: the grid
completes, no prior completed-cell result is lost, and the telemetry
records what happened.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import ConfigurationError
from repro.harness.exec import ExecutionEngine, ResultCache, cell_key
from repro.harness.faults import FaultPlan, faults_from_env, parse_fault_spec
from repro.harness.journal import RunJournal

from tests.harness.test_exec import SleepCell


class TestParseFaultSpec:
    def test_full_spec(self):
        plan = parse_fault_spec(
            "crash=alpha;hang=beta;corrupt=gamma;kill-worker=2;"
            "hang-seconds=7.5;state=/tmp/x"
        )
        assert plan.crash_cells == ("alpha",)
        assert plan.hang_cells == ("beta",)
        assert plan.corrupt_cells == ("gamma",)
        assert plan.kill_workers == (2,)
        assert plan.hang_seconds == 7.5
        assert plan.state_dir == "/tmp/x"

    def test_multiple_clauses_accumulate(self):
        plan = parse_fault_spec("crash=a;crash=b")
        assert plan.crash_cells == ("a", "b")

    def test_journal_batch_crash_clause(self):
        plan = parse_fault_spec("journal-batch-crash=2")
        assert plan.journal_batch_crash == 2

    def test_journal_batch_crash_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            parse_fault_spec("journal-batch-crash=0")
        with pytest.raises(ConfigurationError):
            parse_fault_spec("journal-batch-crash=soon")

    def test_unknown_kind_rejected_with_help(self):
        with pytest.raises(ConfigurationError) as excinfo:
            parse_fault_spec("explode=x")
        assert "explode" in str(excinfo.value)
        assert "crash=" in str(excinfo.value)  # accepted forms listed

    def test_malformed_clause_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_fault_spec("crash")
        with pytest.raises(ConfigurationError):
            parse_fault_spec("kill-worker=soon")

    def test_faults_from_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert faults_from_env() is None
        monkeypatch.setenv("REPRO_FAULTS", f"crash=x;state={tmp_path}")
        plan = faults_from_env()
        assert plan.crash_cells == ("x",)
        assert plan.state_dir == str(tmp_path)

    def test_faults_from_env_gets_one_shot_state_dir(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "crash=x")
        plan = faults_from_env()
        assert plan.state_dir is not None


class TestFireOnce:
    def test_state_dir_makes_faults_one_shot(self, tmp_path):
        plan = FaultPlan(corrupt_cells=("a",), state_dir=str(tmp_path))
        assert plan.should_corrupt("cell-a")
        assert not plan.should_corrupt("cell-a")  # already fired

    def test_without_state_dir_faults_repeat(self):
        plan = FaultPlan(corrupt_cells=("a",))
        assert plan.should_corrupt("cell-a")
        assert plan.should_corrupt("cell-a")

    def test_non_matching_labels_unaffected(self, tmp_path):
        plan = FaultPlan(corrupt_cells=("a",), state_dir=str(tmp_path))
        assert not plan.should_corrupt("cell-b")


class TestWorkerCrashRecovery:
    def test_crashed_worker_is_respawned_and_cell_retried(self, tmp_path):
        plan = FaultPlan(crash_cells=("sleep[0.05]",), state_dir=str(tmp_path))
        engine = ExecutionEngine(
            jobs=2, retries=1, backoff_base=0.01, faults=plan
        )
        outcomes = engine.run([SleepCell(0.05), SleepCell(0.01)])
        # The crashed cell recovered; the other cell was never disturbed.
        assert [o.status for o in outcomes] == ["computed", "computed"]
        assert outcomes[0].value == 0.05
        assert outcomes[0].attempts == 2
        assert engine.telemetry.worker_crashes == 1
        assert engine.telemetry.workers_respawned >= 1
        assert engine.telemetry.retries == 1

    def test_crash_error_is_reported_when_budget_exhausted(self):
        # No state dir: the fault fires on every attempt.
        plan = FaultPlan(crash_cells=("sleep[0.05]",))
        engine = ExecutionEngine(
            jobs=2, retries=1, backoff_base=0.01, faults=plan
        )
        outcomes = engine.run([SleepCell(0.05), SleepCell(0.01)])
        # Every attempt crashed its worker: the circuit breaker
        # quarantines the cell as poisoned (a flavor of failed).
        assert outcomes[0].status == "poisoned"
        assert not outcomes[0].ok
        assert "worker crashed" in outcomes[0].error
        assert outcomes[0].attempts == 2
        assert outcomes[1].status == "computed"  # grid kept going

    def test_completed_results_survive_a_crash(self, tmp_path):
        """Prior completed cells stay journaled when a later cell crashes."""
        plan = FaultPlan(crash_cells=("sleep[0.2]",))
        journal = RunJournal(tmp_path / "j.jsonl")
        engine = ExecutionEngine(
            jobs=2, retries=0, backoff_base=0.01, faults=plan, journal=journal
        )
        outcomes = engine.run([SleepCell(0.01), SleepCell(0.2)])
        assert outcomes[0].status == "computed"
        loaded = RunJournal(tmp_path / "j.jsonl").load()
        assert loaded[outcomes[0].key].ok
        assert not loaded[outcomes[1].key].ok


class TestWorkerHangRecovery:
    def test_hung_worker_is_killed_and_cell_retried(self, tmp_path):
        plan = FaultPlan(
            hang_cells=("sleep[0.05]",),
            hang_seconds=60.0,
            state_dir=str(tmp_path),
        )
        engine = ExecutionEngine(
            jobs=2, retries=1, timeout=0.5, backoff_base=0.01, faults=plan
        )
        start = time.perf_counter()
        outcomes = engine.run([SleepCell(0.05), SleepCell(0.01)])
        elapsed = time.perf_counter() - start
        assert [o.status for o in outcomes] == ["computed", "computed"]
        assert engine.telemetry.worker_timeouts == 1
        assert engine.telemetry.workers_respawned >= 1
        # The supervisor killed the hang at the deadline; it did not
        # wait out the 60-second sleep.
        assert elapsed < 30.0

    def test_hang_does_not_block_other_cells(self, tmp_path):
        """One stuck cell cannot occupy the pool for the rest of the run:
        cells queued behind it complete while it is being killed."""
        plan = FaultPlan(
            hang_cells=("sleep[0.05]",),
            hang_seconds=60.0,
            state_dir=str(tmp_path),
        )
        engine = ExecutionEngine(
            jobs=2, retries=1, timeout=1.0, backoff_base=0.01, faults=plan
        )
        cells = [SleepCell(0.05)] + [SleepCell(0.01 + i / 1000) for i in range(4)]
        outcomes = engine.run(cells)
        assert all(o.status == "computed" for o in outcomes)


class TestCorruptCacheRecovery:
    def test_corrupt_entry_is_quarantined_and_recomputed(self, tmp_path):
        cache_dir = tmp_path / "cache"
        plan = FaultPlan(
            corrupt_cells=("sleep[0.01]",), state_dir=str(tmp_path / "state")
        )
        (tmp_path / "state").mkdir()
        first = ExecutionEngine(jobs=1, cache=ResultCache(cache_dir), faults=plan)
        first.run([SleepCell(0.01)])

        second = ExecutionEngine(jobs=1, cache=ResultCache(cache_dir))
        outcomes = second.run([SleepCell(0.01)])
        # Not a silent miss: quarantined, counted, recomputed.
        assert outcomes[0].status == "computed"
        assert second.telemetry.quarantines == 1
        assert second.telemetry.simulations == 1
        key = cell_key(SleepCell(0.01))
        # The damaged line's bytes are preserved in the shard's
        # quarantine sidecar for diagnosis (the packed analogue of the
        # legacy *.json.corrupt rename).
        corrupt_sidecar = cache_dir / "packs" / f"{key[:1]}.corrupt"
        assert corrupt_sidecar.exists()
        assert corrupt_sidecar.stat().st_size > 0
        # The recomputed entry replaced the corrupt one: third run hits.
        third = ExecutionEngine(jobs=1, cache=ResultCache(cache_dir))
        assert third.run([SleepCell(0.01)])[0].status == "hit"
        assert third.telemetry.quarantines == 0


class TestKillWorkerRecovery:
    def test_infant_mortality_worker_is_replaced(self, tmp_path):
        plan = FaultPlan(kill_workers=(0,), state_dir=str(tmp_path))
        engine = ExecutionEngine(
            jobs=2, retries=1, backoff_base=0.01, faults=plan
        )
        outcomes = engine.run([SleepCell(0.01), SleepCell(0.02), SleepCell(0.03)])
        assert all(o.status == "computed" for o in outcomes)
        assert engine.telemetry.worker_crashes >= 1
        assert engine.telemetry.workers_respawned >= 1
