"""Tests for the LLC sensitivity study harness (Figure 11)."""

import pytest

from repro.harness.runconfig import TEST
from repro.harness.sensitivity import (
    SensitivityCurve,
    classify_benchmarks,
    run_sensitivity_curve,
)
from repro.workloads.spec import SPEC_BENCHMARKS


class TestSensitivityCurve:
    def test_normalized_last_is_one(self):
        curve = SensitivityCurve("x", (4, 8, 16), (1.0, 2.0, 4.0))
        assert curve.normalized_ipc[-1] == pytest.approx(1.0)

    def test_adequate_size(self):
        curve = SensitivityCurve("x", (4, 8, 16), (1.0, 3.8, 4.0))
        assert curve.adequate_size_lines() == 8  # 3.8/4.0 = 0.95 >= 0.9

    def test_adequate_falls_back_to_max(self):
        curve = SensitivityCurve("x", (4, 8, 16), (1.0, 2.0, 4.0))
        assert curve.adequate_size_lines() == 16

    def test_zero_ipc_guard(self):
        curve = SensitivityCurve("x", (4, 8), (0.0, 0.0))
        assert curve.normalized_ipc == (0.0, 0.0)

    def test_classification(self):
        sensitive_curve = SensitivityCurve("big", (4, 8, 16), (0.1, 0.2, 1.0))
        insensitive_curve = SensitivityCurve("small", (4, 8, 16), (1.0, 1.0, 1.0))
        sensitive, insensitive = classify_benchmarks(
            {"big": sensitive_curve, "small": insensitive_curve},
            static_partition_lines=8,
        )
        assert sensitive == ["big"]
        assert insensitive == ["small"]


class TestMeasuredCurves:
    """Run a few real curves at the small TEST profile."""

    def test_insensitive_benchmark_is_flat(self):
        curve = run_sensitivity_curve(SPEC_BENCHMARKS["imagick_0"], TEST)
        normalized = curve.normalized_ipc
        assert min(normalized) > 0.85  # essentially flat

    def test_sensitive_benchmark_has_a_knee(self):
        curve = run_sensitivity_curve(SPEC_BENCHMARKS["parest_0"], TEST)
        normalized = curve.normalized_ipc
        assert normalized[0] < 0.6  # starved at 128 kB-equivalent
        assert normalized[-1] == pytest.approx(1.0)

    def test_monotone_up_to_noise(self):
        curve = run_sensitivity_curve(SPEC_BENCHMARKS["xz_0"], TEST)
        normalized = curve.normalized_ipc
        for earlier, later in zip(normalized, normalized[1:]):
            assert later >= earlier - 0.08
