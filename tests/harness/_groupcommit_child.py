"""Child campaign for the group-commit crash-window tests.

Runs a small serial campaign with a *batched* journal (three entries
per fsync, linger effectively disabled) so the parent can kill the
process in the window between a batch's buffered entries and their
fsync — via the ``journal-batch-crash=<n>`` fault, which hard-exits at
the start of flush number ``n`` while the batch is still in user
space. Progress lines are acks: the engine prints one only after the
cell's record is fsync'd, so the parent can assert that no lost cell
was ever acked.

Usage: python _groupcommit_child.py JOURNAL_PATH [FAULT_SPEC] [--resume]

Prints one progress line per acked cell and, if the campaign survives,
a final ``RESULT {json}`` line with the telemetry the parent asserts on.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.harness.exec import ExecutionEngine
from repro.harness.faults import parse_fault_spec
from repro.harness.journal import RunJournal

CELLS = 6
BATCH_ENTRIES = 3


class TrivialCell:
    """Instant cell whose value carries floats that must survive the
    journal round-trip bit-identically."""

    def __init__(self, index: int):
        self.index = index

    @property
    def label(self) -> str:
        return f"trivial[{self.index}]"

    def cache_token(self):
        return {"kind": "groupcommit-child", "index": self.index}

    def execute(self):
        return {"index": self.index, "seventh": (self.index + 1) / 7.0}

    @staticmethod
    def cycles_of(value):
        return None

    @staticmethod
    def encode(value):
        return value

    @staticmethod
    def decode(payload):
        return payload


def main() -> int:
    journal_path = Path(sys.argv[1])
    rest = sys.argv[2:]
    resume = "--resume" in rest
    spec = next((arg for arg in rest if not arg.startswith("--")), None)
    faults = parse_fault_spec(spec) if spec else None
    engine = ExecutionEngine(
        jobs=1,
        journal=RunJournal(
            journal_path,
            batch_entries=BATCH_ENTRIES,
            linger_seconds=3600.0,
        ),
        resume=resume,
        faults=faults,
        progress=lambda line: print(line, flush=True),
    )
    outcomes = engine.run(
        [TrivialCell(i) for i in range(CELLS)], campaign="groupcommit-child"
    )
    result = {
        "simulations": engine.telemetry.simulations,
        "replays": engine.telemetry.journal_replays,
        "values": [o.value for o in outcomes],
        "statuses": [o.status for o in outcomes],
    }
    print("RESULT " + json.dumps(result), flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
