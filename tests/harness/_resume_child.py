"""Child campaign for the crash/interrupt resume tests.

Runs a small serial campaign against a journal whose path is given on
the command line, printing one progress line per finished cell (the
parent test kills the process after a couple of lines) and a final
``RESULT {json}`` line with the telemetry the parent asserts on.

Usage: python _resume_child.py JOURNAL_PATH [--resume]

Exit status 130 on SIGINT, mirroring the ``python -m repro`` CLI.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.errors import CampaignInterrupted
from repro.harness.exec import ExecutionEngine
from repro.harness.journal import RunJournal

CELLS = 4
CELL_SECONDS = 0.4


class SlowCell:
    """Deterministic slow cell: value carries floats that must survive
    the journal round-trip bit-identically."""

    def __init__(self, index: int):
        self.index = index

    @property
    def label(self) -> str:
        return f"slow[{self.index}]"

    def cache_token(self):
        return {"kind": "resume-child-slow", "index": self.index}

    def execute(self):
        time.sleep(CELL_SECONDS)
        return {"index": self.index, "third": (self.index + 1) / 3.0}

    @staticmethod
    def cycles_of(value):
        return None

    @staticmethod
    def encode(value):
        return value

    @staticmethod
    def decode(payload):
        return payload


def main() -> int:
    journal_path = Path(sys.argv[1])
    resume = "--resume" in sys.argv[2:]
    engine = ExecutionEngine(
        jobs=1,
        journal=RunJournal(journal_path),
        resume=resume,
        progress=lambda line: print(line, flush=True),
    )
    try:
        outcomes = engine.run([SlowCell(i) for i in range(CELLS)], campaign="resume-child")
    except CampaignInterrupted as exc:
        print(f"INTERRUPTED {exc}", flush=True)
        return 130
    result = {
        "simulations": engine.telemetry.simulations,
        "replays": engine.telemetry.journal_replays,
        "values": [o.value for o in outcomes],
        "statuses": [o.status for o in outcomes],
    }
    print("RESULT " + json.dumps(result), flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
