"""Streaming-sketch accuracy and determinism.

The campaign-level aggregation layer replaces exact "hold every value"
statistics with O(1)-memory sketches; these tests pin down the contract
that makes that safe: small-sample exactness, bounded estimation error
on large streams, and deterministic reservoir contents so reports stay
reproducible across re-runs.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.harness.streamstats import (
    P2Quantile,
    Reservoir,
    StreamingSummary,
    Welford,
)


def exact_quantile(values: list[float], q: float) -> float:
    """Nearest-rank quantile of a full sample (the reference)."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


class TestP2Quantile:
    def test_rejects_degenerate_quantiles(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    def test_empty_returns_none(self):
        assert P2Quantile(0.5).value() is None

    def test_exact_below_five_observations(self):
        sketch = P2Quantile(0.5)
        for x in (5.0, 1.0, 3.0):
            sketch.add(x)
        assert sketch.value() == 3.0  # exact median of {1, 3, 5}
        assert sketch.count == 3

    @pytest.mark.parametrize("q", [0.1, 0.5, 0.9, 0.99])
    def test_tracks_uniform_stream_within_tolerance(self, q):
        rng = random.Random(42)
        values = [rng.uniform(0.0, 100.0) for _ in range(20_000)]
        sketch = P2Quantile(q)
        for x in values:
            sketch.add(x)
        # P² on a well-behaved stream stays within a few percent of the
        # exact order statistic (the paper-scale campaigns only need
        # distribution shape, not exact ranks).
        assert sketch.value() == pytest.approx(exact_quantile(values, q), abs=2.0)

    def test_monotone_stream(self):
        sketch = P2Quantile(0.5)
        for x in range(1, 1001):
            sketch.add(float(x))
        assert sketch.value() == pytest.approx(500.0, rel=0.05)


class TestReservoir:
    def test_rejects_empty_reservoir(self):
        with pytest.raises(ValueError):
            Reservoir(0)

    def test_keeps_everything_below_capacity(self):
        res = Reservoir(10)
        for i in range(7):
            res.add(i)
        assert res.items == list(range(7))
        assert res.count == 7

    def test_caps_at_capacity(self):
        res = Reservoir(5)
        for i in range(1000):
            res.add(i)
        assert len(res.items) == 5
        assert res.count == 1000

    def test_same_seed_same_sample(self):
        a, b = Reservoir(8, seed=7), Reservoir(8, seed=7)
        for i in range(500):
            a.add(i)
            b.add(i)
        assert a.items == b.items

    def test_items_is_a_copy(self):
        res = Reservoir(3)
        res.add(1)
        res.items.append(99)
        assert res.items == [1]


class TestWelford:
    def test_matches_two_pass_statistics(self):
        rng = random.Random(1)
        values = [rng.gauss(10.0, 3.0) for _ in range(5000)]
        w = Welford()
        for x in values:
            w.add(x)
        mean = sum(values) / len(values)
        variance = sum((x - mean) ** 2 for x in values) / len(values)
        assert w.count == len(values)
        assert w.mean == pytest.approx(mean)
        assert w.variance == pytest.approx(variance)
        assert w.std == pytest.approx(math.sqrt(variance))
        assert w.minimum == min(values)
        assert w.maximum == max(values)

    def test_empty_is_safe(self):
        w = Welford()
        assert w.variance == 0.0
        assert w.std == 0.0


class TestStreamingSummary:
    def test_summary_keys(self):
        summary = StreamingSummary((0.1, 0.5, 0.9))
        for x in range(100):
            summary.add(float(x))
        out = summary.summary()
        assert set(out) == {"count", "mean", "std", "min", "max",
                            "p10", "p50", "p90"}
        assert out["count"] == 100
        assert out["min"] == 0.0 and out["max"] == 99.0
        assert out["p10"] < out["p50"] < out["p90"]

    def test_empty_summary_is_all_none(self):
        out = StreamingSummary().summary()
        assert out["count"] == 0
        assert out["mean"] is None and out["p50"] is None

    def test_quantile_lookup(self):
        summary = StreamingSummary((0.5,))
        summary.add(1.0)
        summary.add(2.0)
        summary.add(3.0)
        assert summary.quantile(0.5) == 2.0
        assert summary.quantile(0.9) is None  # untracked quantile

    def test_reservoir_sample_included_and_deterministic(self):
        a = StreamingSummary((0.5,), reservoir=4, seed=3)
        b = StreamingSummary((0.5,), reservoir=4, seed=3)
        for x in range(200):
            a.add(float(x))
            b.add(float(x))
        assert a.summary()["sample"] == b.summary()["sample"]
        assert len(a.summary()["sample"]) == 4
