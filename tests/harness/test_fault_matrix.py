"""The deterministic fault matrix: every failure domain, one suite.

Each case injects one fault class into an otherwise identical small
campaign and asserts the three properties the robustness layer promises
(`docs/robustness.md`):

1. **Accounting stays truthful** — the telemetry invariant
   ``computed + hit + replayed + failed == total`` holds under every
   fault, so no cell is double-counted or silently dropped.
2. **Surviving results are bit-identical** to a fault-free run — fault
   handling may cost durability or retries, never correctness.
3. **Nothing leaks** — no worker processes and no ``/dev/shm/repro-*``
   segments outlive the run.

Plus the per-class contracts: crashes/hangs/stalls recover within the
retry budget; a deterministic poison cell trips the circuit breaker
(``poisoned`` status, failure manifest, non-ok exit, resume re-attempts
exactly it); slow-but-progressing cells are *not* killed however long
they stall-watch; and ``EIO``/``ENOSPC`` on journal/cache/store degrade
that subsystem instead of aborting the campaign.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.harness.exec import ExecutionEngine, ResultCache
from repro.harness.faults import CRASH_EXIT_CODE, FaultPlan, parse_fault_spec
from repro.harness.journal import RunJournal
from repro.harness.store import PrecomputeStore

TOTAL = 6
SHM_ROOT = Path("/dev/shm")
REPO_ROOT = Path(__file__).resolve().parents[2]
GROUPCOMMIT_CHILD = Path(__file__).with_name("_groupcommit_child.py")
GC_CELLS = 6  # keep in sync with _groupcommit_child.CELLS
GC_BATCH = 3  # keep in sync with _groupcommit_child.BATCH_ENTRIES


class MatrixCell:
    """Deterministic unit of work with float-carrying results.

    The floats make bit-identity assertions meaningful: any lossy
    round-trip (journal, cache, pipe) or nondeterministic recovery path
    would show up as a value mismatch against the fault-free baseline.
    """

    def __init__(self, index: int):
        self.index = index

    @property
    def label(self) -> str:
        return f"m[{self.index}]"

    def cache_token(self):
        return {"kind": "fault-matrix", "index": self.index}

    def execute(self):
        time.sleep(0.03)
        return {
            "index": self.index,
            "third": (self.index + 1) / 3.0,
            "seventh": (self.index + 1) / 7.0,
        }

    @staticmethod
    def cycles_of(value):
        return None

    @staticmethod
    def encode(value):
        return value

    @staticmethod
    def decode(payload):
        return payload


def shm_segments() -> set[str]:
    if not SHM_ROOT.is_dir():
        return set()
    return {p.name for p in SHM_ROOT.glob("repro-*")}


def run_campaign(
    tmp_path: Path,
    faults: FaultPlan | None,
    *,
    subdir: str = "run",
    resume: bool = False,
    stall_timeout: float | None = None,
):
    """One small parallel campaign with the full I/O stack attached."""
    root = tmp_path / subdir
    engine = ExecutionEngine(
        jobs=2,
        cache=ResultCache(root / "cache"),
        journal=RunJournal(root / "journal.jsonl"),
        resume=resume,
        store=PrecomputeStore(root / "store"),
        timeout=5.0,
        heartbeat=0.2,
        stall_timeout=stall_timeout,
        retries=2,
        backoff_base=0.01,
        faults=faults,
    )
    outcomes = engine.run(
        [MatrixCell(i) for i in range(TOTAL)], campaign="fault-matrix"
    )
    return engine, outcomes


def assert_invariant(engine):
    snap = engine.telemetry.snapshot()
    assert (
        snap["computed"] + snap["hit"] + snap["replayed"] + snap["failed"]
        == snap["total"]
        == TOTAL
    ), snap


def assert_no_leaks(shm_before: set[str]):
    # Workers are joined by supervisor shutdown; give the OS a beat.
    deadline = time.monotonic() + 5.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert not multiprocessing.active_children()
    assert shm_segments() <= shm_before


@pytest.fixture()
def baseline(tmp_path):
    """Fault-free reference values (and proof the campaign is green)."""
    engine, outcomes = run_campaign(tmp_path, None, subdir="baseline")
    assert [o.status for o in outcomes] == ["computed"] * TOTAL
    assert_invariant(engine)
    return [o.value for o in outcomes]


# Each entry: (fault spec, needs_state_dir, expected status list or None
# meaning all computed). Specs are parsed by the same parser REPRO_FAULTS
# uses, so the matrix doubles as coverage of the spec grammar.
MATRIX = {
    "crash-recovers": ("crash=m[2]", True),
    "kill-worker-recovers": ("kill-worker=0", True),
    "hang-is-stall-killed": ("hang=m[1];hang-seconds=3600", True),
    "stall-frozen-progress": ("heartbeat-stall=m[1];stall-seconds=30", True),
    "corrupt-entry-quarantined": ("corrupt=m[0]", True),
    "io-error-journal": ("io-error=journal", True),
    "io-error-cache": ("io-error=cache", True),
    "io-error-store": ("io-error=store", True),
    "enospc-cache": ("enospc=cache", True),
    "enospc-journal": ("enospc=journal", True),
}


class TestFaultMatrix:
    @pytest.mark.parametrize("case", sorted(MATRIX))
    def test_campaign_survives_fault(self, tmp_path, baseline, case):
        spec, needs_state = MATRIX[case]
        if needs_state:
            state = tmp_path / "fault-state"
            state.mkdir()
            spec = f"{spec};state={state}"
        plan = parse_fault_spec(spec)
        shm_before = shm_segments()
        engine, outcomes = run_campaign(tmp_path, plan, subdir=case)

        # Recovery: every cell completed despite the injected fault.
        assert [o.status for o in outcomes] == ["computed"] * TOTAL
        assert_invariant(engine)
        # Bit-identity: fault handling never changes surviving results.
        assert [o.value for o in outcomes] == baseline
        assert_no_leaks(shm_before)
        # A clean finish leaves no failure manifest behind.
        assert engine.manifest_path is None

        if case.startswith(("io-error", "enospc")):
            subsystem = spec.split(";")[0].split("=")[1]
            assert list(engine.telemetry.degraded) == [subsystem]
            if case.startswith("enospc"):
                assert "28" in engine.telemetry.degraded[subsystem] or (
                    "No space" in engine.telemetry.degraded[subsystem]
                )
        else:
            assert engine.telemetry.degraded == {}

        if case in ("hang-is-stall-killed", "stall-frozen-progress"):
            # The kill came from stall evidence, and the early warning
            # fired before it.
            assert engine.telemetry.worker_timeouts >= 1
            assert engine.telemetry.worker_unresponsive >= 1

    def test_slow_cell_with_progress_is_never_killed(self, tmp_path, baseline):
        """Slow is not hung: a cell beating progress survives a stall
        deadline shorter than its runtime."""
        state = tmp_path / "fault-state"
        state.mkdir()
        plan = parse_fault_spec(f"slow=m[4];slow-seconds=1.2;state={state}")
        engine, outcomes = run_campaign(
            tmp_path, plan, stall_timeout=0.8
        )
        assert [o.status for o in outcomes] == ["computed"] * TOTAL
        assert [o.value for o in outcomes] == baseline
        assert engine.telemetry.worker_timeouts == 0
        assert engine.telemetry.worker_crashes == 0

    def test_poison_cell_trips_circuit_breaker(self, tmp_path, baseline):
        """A deterministically crashing cell is quarantined after the
        retry budget; the campaign completes and renders a manifest."""
        plan = parse_fault_spec("poison=m[3]")
        shm_before = shm_segments()
        engine, outcomes = run_campaign(tmp_path, plan, subdir="poison")

        statuses = [o.status for o in outcomes]
        assert statuses[3] == "poisoned"
        assert statuses[:3] + statuses[4:] == ["computed"] * (TOTAL - 1)
        assert not outcomes[3].ok
        assert outcomes[3].attempts == 3  # retries=2 exhausted
        assert_invariant(engine)
        snap = engine.telemetry.snapshot()
        assert snap["failed"] == 1 and snap["poisoned"] == 1
        survivors = [o.value for o in outcomes if o.ok]
        assert survivors == baseline[:3] + baseline[4:]
        assert_no_leaks(shm_before)

        # The failure manifest names the poisoned cell.
        assert engine.manifest_path is not None
        manifest = json.loads(engine.manifest_path.read_text())
        assert manifest["poisoned"] == 1 and manifest["failed"] == 0
        assert manifest["cells"][0]["label"] == "m[3]"
        assert manifest["cells"][0]["status"] == "poisoned"

        # --resume re-attempts exactly the poisoned cell (fault gone —
        # the flaky node was replaced — so it now completes).
        resumed_engine, resumed = run_campaign(
            tmp_path, None, subdir="poison", resume=True
        )
        assert [o.status for o in resumed] == (
            ["replayed"] * 3 + ["computed"] + ["replayed"] * 2
        )
        assert resumed_engine.telemetry.simulations == 1
        assert [o.value for o in resumed] == baseline
        # The clean resume clears the stale manifest.
        assert resumed_engine.manifest_path is None
        assert not (tmp_path / "poison" / "failures.json").exists()

    def test_degraded_journal_still_completes_without_resume(self, tmp_path):
        """With the journal degraded mid-run, later cells are simply not
        journaled — a resume re-runs them, it does not crash."""
        state = tmp_path / "fault-state"
        state.mkdir()
        plan = parse_fault_spec(f"io-error=journal;state={state}")
        engine, outcomes = run_campaign(tmp_path, plan, subdir="dj")
        assert [o.status for o in outcomes] == ["computed"] * TOTAL
        assert "journal" in engine.telemetry.degraded
        # The journal stopped before completing all cells.
        journaled = RunJournal(tmp_path / "dj" / "journal.jsonl").load()
        assert len(journaled) < TOTAL


def run_groupcommit_child(journal: Path, *args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_FAULTS", None)
    env.pop("REPRO_RESUME", None)
    return subprocess.run(
        [sys.executable, str(GROUPCOMMIT_CHILD), str(journal), *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        timeout=120,
    )


def parse_child_result(output: str) -> dict:
    result_lines = [l for l in output.splitlines() if l.startswith("RESULT ")]
    assert result_lines, output
    return json.loads(result_lines[-1][len("RESULT "):])


class TestJournalBatchCrashWindow:
    """The group-commit crash window: entries buffered but not fsync'd.

    With a batched journal the dangerous window is between a cell
    finishing and its batch's fsync. The ack protocol closes it: a cell
    is only reported done (progress line, resume-skip eligibility) after
    the fsync that made its record durable. ``journal-batch-crash=2``
    hard-kills the child at the start of the second flush, while that
    batch is still in user space — the buffered cells must be neither
    acked nor journaled, and ``--resume`` must re-attempt exactly them.
    """

    def test_journal_batch_crash_loses_only_unacked_cells(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        crashed = run_groupcommit_child(journal, "journal-batch-crash=2")
        assert crashed.returncode == CRASH_EXIT_CODE, crashed.stdout

        # Acks stop at the durability horizon: only the first batch's
        # cells (fsync'd by flush #1) ever produced a progress line.
        acked = [
            l for l in crashed.stdout.splitlines() if l.startswith("[exec")
        ]
        assert len(acked) == GC_BATCH, crashed.stdout

        # The journal holds exactly the fsync'd batch — the buffered
        # batch died in user space, leaving no torn lines behind.
        fresh = RunJournal(journal)
        loaded = fresh.load()
        assert fresh.corrupt_lines == 0
        assert len(loaded) == GC_BATCH
        assert all(entry.ok for entry in loaded.values())

        # Resume replays the durable cells and re-attempts exactly the
        # lost ones — never trusting an un-fsync'd ack.
        resumed = run_groupcommit_child(journal, "--resume")
        assert resumed.returncode == 0, resumed.stdout
        result = parse_child_result(resumed.stdout)
        assert result["replays"] == GC_BATCH
        assert result["simulations"] == GC_CELLS - GC_BATCH
        assert result["statuses"] == (
            ["replayed"] * GC_BATCH + ["computed"] * (GC_CELLS - GC_BATCH)
        )

        # Bit-identical to an uninterrupted reference run.
        clean = run_groupcommit_child(tmp_path / "reference.jsonl")
        assert clean.returncode == 0, clean.stdout
        reference = parse_child_result(clean.stdout)
        assert reference["simulations"] == GC_CELLS
        assert result["values"] == reference["values"]

    def test_journal_batch_first_flush_crash_loses_everything(self, tmp_path):
        """Crash before any fsync: zero acks, empty journal, full rerun."""
        journal = tmp_path / "journal.jsonl"
        crashed = run_groupcommit_child(journal, "journal-batch-crash=1")
        assert crashed.returncode == CRASH_EXIT_CODE, crashed.stdout
        acked = [
            l for l in crashed.stdout.splitlines() if l.startswith("[exec")
        ]
        assert acked == [], crashed.stdout
        assert len(RunJournal(journal).load()) == 0

        resumed = run_groupcommit_child(journal, "--resume")
        assert resumed.returncode == 0, resumed.stdout
        result = parse_child_result(resumed.stdout)
        assert result["replays"] == 0
        assert result["simulations"] == GC_CELLS


class TestFdHygiene:
    def test_repeated_faulted_runs_do_not_leak_fds(self, tmp_path):
        fd_dir = Path("/proc/self/fd")
        if not fd_dir.is_dir():
            pytest.skip("/proc not available")
        plan = parse_fault_spec("poison=m[3]")
        run_campaign(tmp_path, plan, subdir="warmup")
        before = len(list(fd_dir.iterdir()))
        for round_ in range(2):
            run_campaign(tmp_path, plan, subdir=f"round{round_}")
        after = len(list(fd_dir.iterdir()))
        # Slack for interpreter noise; a real leak (pipes per worker per
        # run) would blow well past it.
        assert after <= before + 8
