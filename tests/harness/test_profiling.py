"""Tests for one-cell cProfile capture (REPRO_PROFILE / --cprofile)."""

import pstats

import pytest

from repro.harness.exec import ExecutionEngine
from repro.harness.profiling import (
    PROFILE_DIR_ENV,
    PROFILE_ENV,
    maybe_profile,
    output_dir,
    reset_claim,
)


@pytest.fixture()
def profile_dir(tmp_path, monkeypatch):
    monkeypatch.setenv(PROFILE_DIR_ENV, str(tmp_path))
    reset_claim()  # start each test with a fresh campaign claim
    return tmp_path


def busy_work():
    return sum(i * i for i in range(5_000))


class TestMaybeProfile:
    def test_disabled_without_env(self, profile_dir):
        assert maybe_profile("mix[a]/static", busy_work) == busy_work()
        assert list(profile_dir.iterdir()) == []

    def test_captures_first_matching_cell(self, profile_dir, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, "untangle")
        assert maybe_profile("mix[a]/static", busy_work) == busy_work()
        assert maybe_profile("mix[a]/untangle", busy_work) == busy_work()
        written = sorted(p.name for p in profile_dir.iterdir())
        assert written == ["profile-mix-a-untangle.pstats"]
        stats = pstats.Stats(str(profile_dir / written[0]))
        assert any("busy_work" in str(func) for func in stats.stats)

    def test_fires_once_per_campaign(self, profile_dir, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, "all")
        maybe_profile("cell-one", busy_work)
        maybe_profile("cell-two", busy_work)
        assert len(list(profile_dir.iterdir())) == 1

    def test_dumps_stats_even_when_the_cell_raises(
        self, profile_dir, monkeypatch
    ):
        monkeypatch.setenv(PROFILE_ENV, "all")

        def explode():
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            maybe_profile("doomed", explode)
        assert (profile_dir / "profile-doomed.pstats").exists()

    def test_output_dir_defaults_beside_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.delenv(PROFILE_DIR_ENV, raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache" / ".cache"))
        assert output_dir() == tmp_path / "cache"


class _Cell:
    """Minimal engine cell that records whether it executed."""

    label = "profiled-cell"

    def cache_token(self):
        return {"kind": "test", "label": self.label}

    def execute(self):
        return busy_work()

    @staticmethod
    def cycles_of(value):
        return None

    @staticmethod
    def encode(value):
        return {"value": value}

    @staticmethod
    def decode(payload):
        return payload["value"]


def test_engine_serial_run_profiles_a_cell(profile_dir, monkeypatch):
    monkeypatch.setenv(PROFILE_ENV, "profiled")
    engine = ExecutionEngine(jobs=1)
    outcomes = engine.run([_Cell()])
    assert outcomes[0].value == busy_work()
    assert (profile_dir / "profile-profiled-cell.pstats").exists()


def test_cli_flag_sets_profile_env(monkeypatch, tmp_path):
    from repro.__main__ import build_parser

    args = build_parser().parse_args(
        ["--cprofile", "untangle", "--cache-dir", str(tmp_path / "c"), "mix", "1"]
    )
    assert args.cprofile == "untangle"
    off = build_parser().parse_args(["mix", "1"])
    assert off.cprofile is None
