"""Tests for the prefork precompute warming used by lane stacking.

The supervisor warms pure, shareable state (L1 service traces, untangle
rate tables) in the parent before forking workers; these tests pin the
warming helpers' dedup and routing logic without paying real solves.
"""

from __future__ import annotations

import pytest

import repro.harness.experiment as experiment
from repro.harness.experiment import warm_l1_traces, warm_rate_tables
from repro.harness.runconfig import TEST
from repro.workloads.mixes import get_mix


class TestWarmRateTables:
    @pytest.fixture()
    def calls(self, monkeypatch):
        calls: list[tuple[str, int]] = []
        monkeypatch.setattr(
            experiment,
            "get_rate_table",
            lambda cooldown, capacity=None: calls.append(
                ("optimized", cooldown)
            ),
        )
        monkeypatch.setattr(
            experiment,
            "get_worst_case_rate_table",
            lambda cooldown: calls.append(("worst_case", cooldown)),
        )
        return calls

    def test_dedups_per_scheme_and_cooldown(self, calls):
        warmed = warm_rate_tables(
            [("untangle", TEST), ("untangle", TEST), ("untangle", TEST)]
        )
        assert warmed == 1
        assert calls == [("optimized", TEST.cooldown)]

    def test_ignores_schemes_without_tables(self, calls):
        warmed = warm_rate_tables(
            [("static", TEST), ("shared", TEST), ("time", TEST)]
        )
        assert warmed == 0
        assert calls == []

    def test_worst_case_routed_separately(self, calls):
        warmed = warm_rate_tables(
            [("untangle", TEST), ("untangle-unopt", TEST)]
        )
        assert warmed == 2
        assert calls == [
            ("optimized", TEST.cooldown),
            ("worst_case", TEST.cooldown),
        ]


class TestWarmL1Traces:
    def test_second_warm_is_memoized(self):
        experiment._L1_TRACE_MEMO.clear()
        pairs = list(get_mix(1))[:2]
        entries = [(pairs, TEST)]
        assert warm_l1_traces(entries) == 2
        # Same entries again: everything already memoized.
        assert warm_l1_traces(entries) == 0
        # Every trace is warmed past one full stream pass.
        for trace in experiment._L1_TRACE_MEMO.values():
            assert trace._walked >= trace._period
        experiment._L1_TRACE_MEMO.clear()
