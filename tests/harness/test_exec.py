"""Tests for the parallel execution engine and its result cache.

The two guarantees the benchmark harness depends on:

* **Serial equivalence** — an engine run (any job count, cached or not)
  produces bit-identical ``SchemeRunResult``s to calling
  :func:`run_mix_scheme` directly.
* **Warm cache** — re-running the same grid against the same cache
  directory performs zero simulations; every cell is a cache hit.
"""

from __future__ import annotations

import dataclasses
import time

import pytest

from repro.errors import ConfigurationError
from repro.harness.exec import (
    CACHE_FORMAT_VERSION,
    ExecutionEngine,
    MixSchemeCell,
    ResultCache,
    SensitivityCell,
    backoff_delay,
    cell_key,
    engine_from_env,
)
from repro.harness.experiment import run_mix, run_mix_grid, run_mix_scheme
from repro.harness.runconfig import TEST
from repro.harness.sensitivity import run_sensitivity_study

PAIRS = (("gcc_2", "AES-128"), ("imagick_0", "SHA-256"))
SCHEMES = ("static", "untangle")


def make_cells(profile=TEST, schemes=SCHEMES):
    return [
        MixSchemeCell(pairs=PAIRS, scheme=scheme, profile=profile)
        for scheme in schemes
    ]


class TestCacheKey:
    def test_deterministic(self):
        a, b = make_cells()[0], make_cells()[0]
        assert cell_key(a) == cell_key(b)

    def test_sensitive_to_every_input(self):
        base = MixSchemeCell(pairs=PAIRS, scheme="static", profile=TEST)
        variants = [
            MixSchemeCell(pairs=PAIRS[:1], scheme="static", profile=TEST),
            MixSchemeCell(pairs=PAIRS, scheme="time", profile=TEST),
            MixSchemeCell(
                pairs=PAIRS,
                scheme="static",
                profile=dataclasses.replace(TEST, seed=TEST.seed + 1),
            ),
            MixSchemeCell(
                pairs=PAIRS,
                scheme="static",
                profile=dataclasses.replace(TEST, quantum=TEST.quantum + 1),
            ),
            SensitivityCell(benchmark="gcc_2", partition_lines=64, profile=TEST),
        ]
        keys = {cell_key(base)} | {cell_key(v) for v in variants}
        assert len(keys) == len(variants) + 1

    def test_pair_order_matters(self):
        swapped = MixSchemeCell(
            pairs=PAIRS[::-1], scheme="static", profile=TEST
        )
        assert cell_key(swapped) != cell_key(make_cells()[0])


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, {"value": {"ipc": 1.25}})
        payload = cache.get("ab" * 32)
        assert payload["value"] == {"ipc": 1.25}
        assert payload["format"] == CACHE_FORMAT_VERSION

    def test_miss_returns_none(self, tmp_path):
        assert ResultCache(tmp_path).get("cd" * 32) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ef" * 32
        cache.put(key, {"value": 1})
        cache.corrupt_entry(key)
        fresh = ResultCache(tmp_path)
        assert fresh.get(key) is None
        assert fresh.quarantined == 1

    def test_format_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "01" * 32
        cache.put(key, {"value": 1})
        cache.release_handles()
        pack = tmp_path / "packs" / f"{key[:1]}.pack"
        pack.write_bytes(
            pack.read_bytes().replace(b'"format":3', b'"format":-1')
        )
        fresh = ResultCache(tmp_path)
        assert fresh.get(key) is None
        assert fresh.quarantined == 1

    def test_packed_puts_share_one_segment_per_shard(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = [f"ab{i:02d}" + "0" * 60 for i in range(8)]
        for i, key in enumerate(keys):
            cache.put(key, {"value": i})
        packs = list((tmp_path / "packs").glob("*.pack"))
        assert len(packs) == 1  # all keys share the "a" shard
        for i, key in enumerate(keys):
            assert cache.get(key)["value"] == i

    def test_newer_append_shadows_older_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "be" * 32
        cache.put(key, {"value": 1})
        cache.put(key, {"value": 2})
        cache.release_handles()
        assert ResultCache(tmp_path).get(key)["value"] == 2

    def test_sidecar_index_survives_reopen(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" * 32
        cache.put(key, {"value": {"ipc": 2.5}})
        cache.release_handles()
        assert (tmp_path / "packs" / f"{key[:1]}.idx").exists()
        warm = ResultCache(tmp_path)
        assert warm.get(key)["value"] == {"ipc": 2.5}
        assert warm.hits == 1

    def test_stale_sidecar_triggers_rescan(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "da" * 32
        cache.put(key, {"value": 1})
        cache.release_handles()
        # Append behind the sidecar's back (a second process would).
        other = ResultCache(tmp_path)
        other.put(key, {"value": 2})
        other.release_handles()
        # The sidecar written first still says pack_bytes of one entry;
        # the reader must scan the tail and serve the newest append.
        assert ResultCache(tmp_path).get(key)["value"] == 2

    def test_legacy_per_file_entries_remain_readable(self, tmp_path):
        writer = ResultCache(tmp_path, layout="files")
        key = "fe" * 32
        writer.put(key, {"value": {"ipc": 3.5}})
        assert writer._path(key).exists()
        reader = ResultCache(tmp_path)  # default packed layout
        assert reader.get(key)["value"] == {"ipc": 3.5}
        assert reader.hits == 1 and reader.quarantined == 0

    def test_legacy_corrupt_entry_still_renamed(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ad" * 32
        path = cache._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{not json")
        assert cache.get(key) is None
        assert path.with_name(path.name + ".corrupt").exists()

    def test_pack_damage_quarantines_only_damaged_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = [f"aa{i:02d}" + "0" * 60 for i in range(4)]
        for i, key in enumerate(keys):
            cache.put(key, {"value": i})
        cache.corrupt_entry(keys[1])
        fresh = ResultCache(tmp_path)
        assert fresh.get(keys[1]) is None
        # Exactly one entry was damaged; its neighbors still hit after
        # the compaction that dropped it.
        for i, key in enumerate(keys):
            if i != 1:
                assert fresh.get(key)["value"] == i
        assert fresh.quarantined == 1
        assert (tmp_path / "packs" / "a.corrupt").exists()


class TestEngineValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            ExecutionEngine(jobs=0)
        with pytest.raises(ConfigurationError):
            ExecutionEngine(retries=-1)
        with pytest.raises(ConfigurationError):
            ExecutionEngine(timeout=0.0)
        with pytest.raises(ConfigurationError):
            ExecutionEngine(backoff_base=-0.1)


class TestEngineFromEnv:
    """``REPRO_*`` parsing: friendly errors, not bare ValueErrors."""

    def test_non_integer_jobs_raises_configuration_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ConfigurationError) as excinfo:
            engine_from_env()
        message = str(excinfo.value)
        assert "REPRO_JOBS" in message
        assert "'many'" in message  # the offending value
        assert "integer" in message  # the accepted forms

    def test_negative_jobs_raises_configuration_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "-2")
        with pytest.raises(ConfigurationError) as excinfo:
            engine_from_env()
        message = str(excinfo.value)
        assert "REPRO_JOBS" in message and "'-2'" in message

    def test_zero_jobs_means_one_per_cpu(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert engine_from_env().jobs >= 1

    def test_bad_retries_and_timeout_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "-1")
        with pytest.raises(ConfigurationError, match="REPRO_RETRIES"):
            engine_from_env()
        monkeypatch.delenv("REPRO_RETRIES")
        monkeypatch.setenv("REPRO_TIMEOUT", "soon")
        with pytest.raises(ConfigurationError, match="REPRO_TIMEOUT"):
            engine_from_env()

    def test_journal_and_resume_wiring(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_RESUME", "1")
        engine = engine_from_env()
        assert engine.resume
        assert engine.journal is not None
        assert engine.journal.path == tmp_path / "journal.jsonl"
        monkeypatch.setenv("REPRO_JOURNAL", "0")
        assert engine_from_env().journal is None

    def test_no_cache_dir_means_no_journal(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        engine = engine_from_env()
        assert engine.cache is None and engine.journal is None


class TestBackoff:
    def test_exponential_growth_with_cap(self):
        key = "k" * 64
        delays = [backoff_delay(key, n, 1.0, 8.0) for n in (1, 2, 3, 4, 5, 6)]
        # Jitter scales by [0.5, 1.0); growth dominates until the cap.
        assert delays[1] > delays[0]
        assert delays[2] > delays[1]
        assert all(d <= 8.0 for d in delays)

    def test_deterministic(self):
        assert backoff_delay("a", 2, 0.5, 30.0) == backoff_delay("a", 2, 0.5, 30.0)

    def test_jitter_differs_across_keys(self):
        assert backoff_delay("a", 1, 1.0, 30.0) != backoff_delay("b", 1, 1.0, 30.0)

    def test_zero_base_disables(self):
        assert backoff_delay("a", 5, 0.0, 30.0) == 0.0


class TestSerialEquivalence:
    """Engine results are bit-identical to direct serial simulation."""

    @pytest.fixture(scope="class")
    def direct(self):
        return {
            scheme: run_mix_scheme(list(PAIRS), scheme, TEST)
            for scheme in SCHEMES
        }

    def test_serial_engine_matches_direct(self, direct):
        outcomes = ExecutionEngine(jobs=1).run(make_cells())
        for scheme, outcome in zip(SCHEMES, outcomes):
            assert outcome.status == "computed"
            assert outcome.value == direct[scheme]

    def test_parallel_engine_matches_direct(self, direct):
        outcomes = ExecutionEngine(jobs=2).run(make_cells())
        for scheme, outcome in zip(SCHEMES, outcomes):
            assert outcome.status == "computed"
            assert outcome.value == direct[scheme]

    def test_cache_hit_matches_direct(self, direct, tmp_path):
        cache = ResultCache(tmp_path)
        ExecutionEngine(jobs=1, cache=cache).run(make_cells())
        outcomes = ExecutionEngine(jobs=1, cache=cache).run(make_cells())
        for scheme, outcome in zip(SCHEMES, outcomes):
            assert outcome.status == "hit"
            # The JSON round-trip is exact: floats compare equal bit-wise.
            assert outcome.value == direct[scheme]

    def test_run_mix_with_parallel_engine_matches_plain(self):
        plain = run_mix(1, TEST, schemes=SCHEMES)
        engine = ExecutionEngine(jobs=2)
        parallel = run_mix(1, TEST, schemes=SCHEMES, engine=engine)
        assert parallel.labels == plain.labels
        assert parallel.runs == plain.runs


class TestWarmCache:
    def test_second_run_performs_zero_simulations(self, tmp_path):
        cells = make_cells()
        cold = ExecutionEngine(jobs=1, cache=ResultCache(tmp_path))
        cold.run(cells)
        assert cold.telemetry.simulations == len(cells)
        assert cold.telemetry.cache_hits == 0

        warm = ExecutionEngine(jobs=1, cache=ResultCache(tmp_path))
        outcomes = warm.run(cells)
        assert warm.telemetry.simulations == 0
        assert warm.telemetry.cache_hits == len(cells)
        assert all(outcome.status == "hit" for outcome in outcomes)

    def test_figure_driver_grid_warms_like_bench_fig10(self, tmp_path):
        """The bench_fig10 path: run_mix per mix over a shared cache —
        a second session re-simulates nothing."""
        schemes = ("static", "untangle")
        first = ExecutionEngine(jobs=1, cache=ResultCache(tmp_path))
        for mix_id in (1, 2):
            run_mix(mix_id, TEST, schemes=schemes, engine=first)
        assert first.telemetry.simulations == 4

        second = ExecutionEngine(jobs=1, cache=ResultCache(tmp_path))
        results = {
            mix_id: run_mix(mix_id, TEST, schemes=schemes, engine=second)
            for mix_id in (1, 2)
        }
        assert second.telemetry.simulations == 0
        assert second.telemetry.cache_hits == 4
        assert all(set(r.runs) == set(schemes) for r in results.values())

    def test_profile_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        ExecutionEngine(cache=cache).run(make_cells())
        changed = dataclasses.replace(TEST, seed=TEST.seed + 1)
        engine = ExecutionEngine(cache=cache)
        engine.run(make_cells(profile=changed))
        assert engine.telemetry.cache_hits == 0
        assert engine.telemetry.simulations == len(SCHEMES)


class TestGracefulDegradation:
    def test_failed_cell_does_not_abort_grid(self):
        cells = [
            MixSchemeCell(pairs=PAIRS, scheme="static", profile=TEST),
            MixSchemeCell(pairs=PAIRS, scheme="no-such-scheme", profile=TEST),
        ]
        engine = ExecutionEngine(jobs=1)
        outcomes = engine.run(cells)
        assert outcomes[0].status == "computed"
        assert outcomes[1].status == "failed"
        assert "ConfigurationError" in outcomes[1].error
        # One initial attempt plus the configured retry.
        assert outcomes[1].attempts == 2
        assert engine.telemetry.failures == 1
        assert engine.telemetry.retries == 1

    def test_failed_cell_drops_scheme_from_mix_result(self):
        # Unknown names now fail fast before any cell is submitted
        # (tests/registry/test_registry.py), so runtime degradation
        # needs a registered scheme whose cells actually die.
        from repro.registry import REGISTRY, Registration

        def explode(profile, num_domains):
            raise RuntimeError("boom")

        exploding = Registration(
            kind="scheme", name="exploding", factory=explode
        )
        with REGISTRY.temporary(exploding):
            result = run_mix(
                1, TEST, schemes=("static", "exploding"),
                engine=ExecutionEngine(jobs=1),
            )
        assert "static" in result.runs
        assert "exploding" not in result.runs

    def test_parallel_failure_keeps_grid_going(self):
        cells = [
            MixSchemeCell(pairs=PAIRS, scheme="no-such-scheme", profile=TEST),
            MixSchemeCell(pairs=PAIRS, scheme="static", profile=TEST),
        ]
        engine = ExecutionEngine(jobs=2)
        outcomes = engine.run(cells)
        assert outcomes[0].status == "failed"
        assert outcomes[1].status == "computed"

    def test_failed_cell_is_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = MixSchemeCell(pairs=PAIRS, scheme="no-such-scheme", profile=TEST)
        ExecutionEngine(cache=cache).run([cell])
        assert cache.get(cell_key(cell)) is None


class SleepCell:
    """A test-only cell that sleeps; used to exercise timeouts."""

    def __init__(self, seconds: float):
        self.seconds = seconds

    @property
    def label(self) -> str:
        return f"sleep[{self.seconds}]"

    def cache_token(self):
        return {"kind": "sleep", "seconds": self.seconds}

    def execute(self):
        time.sleep(self.seconds)
        return self.seconds

    @staticmethod
    def cycles_of(value):
        return None

    @staticmethod
    def encode(value):
        return {"seconds": value}

    @staticmethod
    def decode(payload):
        return payload["seconds"]


class TestTimeout:
    def test_slow_cell_times_out_and_grid_continues(self):
        engine = ExecutionEngine(jobs=2, timeout=0.5, retries=0)
        outcomes = engine.run([SleepCell(30.0), SleepCell(0.01)])
        # Every attempt (the only one: retries=0) killed its worker, so
        # the circuit breaker books the cell as poisoned, not merely
        # failed; either way it is not ok and the grid continues.
        assert outcomes[0].status == "poisoned"
        assert not outcomes[0].ok
        assert "timeout" in outcomes[0].error
        assert outcomes[1].status == "computed"
        assert outcomes[1].value == 0.01
        # The hung worker was killed and the pool survived.
        assert engine.telemetry.worker_timeouts == 1
        assert engine.telemetry.workers_respawned == 1

    def test_failed_cell_records_actual_elapsed_time(self):
        """Failed/timed-out cells used to be booked at wall_seconds=0.0,
        undercounting cell_seconds; they must carry real elapsed time."""
        engine = ExecutionEngine(jobs=2, timeout=0.5, retries=0)
        outcomes = engine.run([SleepCell(30.0), SleepCell(0.01)])
        assert outcomes[0].wall_seconds >= 0.4
        failed = [r for r in engine.telemetry.records if not r.status == "computed"]
        assert failed and failed[0].wall_seconds >= 0.4
        assert engine.telemetry.cell_seconds >= 0.4

    def test_timed_out_retries_accumulate_elapsed_time(self):
        engine = ExecutionEngine(
            jobs=2, timeout=0.3, retries=1, backoff_base=0.01
        )
        outcomes = engine.run([SleepCell(30.0)])
        assert outcomes[0].status == "poisoned"  # both attempts killed workers
        assert outcomes[0].attempts == 2
        # Two killed attempts of ~0.3s each.
        assert outcomes[0].wall_seconds >= 0.5


class TestSensitivityEngine:
    def test_parallel_study_matches_serial(self):
        names = ["gcc_2"]
        serial = run_sensitivity_study(names, TEST)
        parallel = run_sensitivity_study(
            names, TEST, engine=ExecutionEngine(jobs=2)
        )
        assert serial.keys() == parallel.keys()
        assert serial["gcc_2"] == parallel["gcc_2"]

    def test_study_warm_cache(self, tmp_path):
        names = ["gcc_2"]
        cache = ResultCache(tmp_path)
        cold = ExecutionEngine(cache=cache)
        run_sensitivity_study(names, TEST, engine=cold)
        warm = ExecutionEngine(cache=cache)
        run_sensitivity_study(names, TEST, engine=warm)
        assert warm.telemetry.simulations == 0
        assert warm.telemetry.cache_hits == cold.telemetry.simulations > 0


class TestGrid:
    def test_grid_matches_per_mix_runs(self):
        grid = run_mix_grid((1,), TEST, schemes=("static",))
        single = run_mix(1, TEST, schemes=("static",))
        assert grid[1].runs == single.runs
        assert grid[1].labels == single.labels

    def test_telemetry_counts_cells_and_cycles(self):
        engine = ExecutionEngine(jobs=1)
        run_mix_grid((1,), TEST, schemes=SCHEMES, engine=engine)
        assert engine.telemetry.cells == len(SCHEMES)
        assert engine.telemetry.cycles_simulated > 0
        assert engine.telemetry.cell_seconds > 0
        assert engine.telemetry.wall_seconds > 0

    def test_progress_lines_emitted(self):
        lines = []
        engine = ExecutionEngine(jobs=1, progress=lines.append)
        engine.run(make_cells(schemes=("static",)))
        assert len(lines) == 1
        assert "status=computed" in lines[0]
        assert lines[0].startswith("[exec 1/1]")
