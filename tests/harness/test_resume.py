"""End-to-end crash/interrupt recovery, exercised through real processes.

These are the acceptance tests of the fault-tolerant runner: a campaign
process killed with SIGKILL (no chance to clean up) or interrupted with
SIGINT leaves a valid journal behind, and ``--resume`` completes the
campaign with *zero re-simulations* of journaled cells and final results
bit-identical to an uninterrupted run.

The campaign itself lives in ``_resume_child.py`` and runs in a child
``python`` process, so the kill is a genuine OS-level kill of the whole
interpreter — not a simulated exception.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.harness.journal import RunJournal

REPO_ROOT = Path(__file__).resolve().parents[2]
CHILD = Path(__file__).with_name("_resume_child.py")
TOTAL_CELLS = 4  # keep in sync with _resume_child.CELLS


def child_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_FAULTS", None)
    env.pop("REPRO_RESUME", None)
    return env


def start_child(journal: Path, *args: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, str(CHILD), str(journal), *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=child_env(),
    )


def read_until_progress(proc: subprocess.Popen, lines: int) -> list[str]:
    """Read child stdout until ``lines`` progress lines have appeared.

    The engine journals a cell *before* emitting its progress line, so
    once a line is visible the corresponding journal record is durable.
    """
    seen: list[str] = []
    while len(seen) < lines:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(
                f"child exited early (rc={proc.wait()}) after {seen}"
            )
        if line.startswith("[exec"):
            seen.append(line.strip())
    return seen


def run_to_completion(journal: Path, *args: str) -> dict:
    proc = start_child(journal, *args)
    out, _ = proc.communicate(timeout=120)
    assert proc.returncode == 0, out
    result_lines = [l for l in out.splitlines() if l.startswith("RESULT ")]
    assert result_lines, out
    return json.loads(result_lines[-1][len("RESULT "):])


class TestSigkillResume:
    def test_sigkilled_campaign_resumes_bit_identical(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        proc = start_child(journal)
        read_until_progress(proc, 2)
        proc.kill()  # SIGKILL: no handlers, no atexit, no flush
        proc.wait(timeout=30)
        proc.stdout.close()

        # The journal survived the kill and is loadable.
        loaded = RunJournal(journal).load()
        completed = sum(1 for e in loaded.values() if e.ok)
        assert 2 <= completed < TOTAL_CELLS

        resumed = run_to_completion(journal, "--resume")
        # Zero re-simulation of journaled cells.
        assert resumed["replays"] == completed
        assert resumed["simulations"] == TOTAL_CELLS - completed
        assert resumed["statuses"].count("replayed") == completed

        # Bit-identical to an uninterrupted run.
        baseline = run_to_completion(tmp_path / "baseline.jsonl")
        assert baseline["simulations"] == TOTAL_CELLS
        assert resumed["values"] == baseline["values"]

    def test_resume_of_resumed_run_is_all_replays(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        proc = start_child(journal)
        read_until_progress(proc, 1)
        proc.kill()
        proc.wait(timeout=30)
        proc.stdout.close()
        run_to_completion(journal, "--resume")
        again = run_to_completion(journal, "--resume")
        assert again["simulations"] == 0
        assert again["replays"] == TOTAL_CELLS


class TestSigintResume:
    def test_sigint_leaves_valid_journal_and_resumes_clean(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        proc = start_child(journal)
        read_until_progress(proc, 1)
        proc.send_signal(signal.SIGINT)
        out, _ = proc.communicate(timeout=30)
        assert proc.returncode == 130, out
        assert "INTERRUPTED" in out
        assert "--resume" in out  # the resume hint names the flag

        # The journal is valid — no torn or corrupt lines.
        fresh = RunJournal(journal)
        loaded = fresh.load()
        assert fresh.corrupt_lines == 0
        completed = sum(1 for e in loaded.values() if e.ok)
        assert 1 <= completed < TOTAL_CELLS

        resumed = run_to_completion(journal, "--resume")
        assert resumed["simulations"] == TOTAL_CELLS - completed
        assert resumed["replays"] == completed
        assert resumed["statuses"].count("computed") == TOTAL_CELLS - completed


class TestSigtermResume:
    def test_sigterm_is_as_graceful_as_sigint(self, tmp_path):
        """Orchestrators (Slurm, Kubernetes, systemd) send SIGTERM, not
        SIGINT. The engine installs the same graceful handler for both:
        drain the in-flight cell, journal it, exit 130 with the resume
        hint."""
        journal = tmp_path / "journal.jsonl"
        proc = start_child(journal)
        read_until_progress(proc, 1)
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=30)
        assert proc.returncode == 130, out
        assert "INTERRUPTED" in out
        assert "--resume" in out

        fresh = RunJournal(journal)
        loaded = fresh.load()
        assert fresh.corrupt_lines == 0
        completed = sum(1 for e in loaded.values() if e.ok)
        assert 1 <= completed < TOTAL_CELLS

        resumed = run_to_completion(journal, "--resume")
        assert resumed["replays"] == completed
        assert resumed["simulations"] == TOTAL_CELLS - completed
