"""Tests for the cross-cell precompute store (traces + Rmax artifacts).

The guarantees the campaign path depends on:

* **Bit-identity** — arrays served from either backend (file mmap or
  shared memory) and Rmax entries round-tripped through the JSON
  artifact are byte-for-byte what the legacy build path produces, for
  any ``(spec, crypto, scale, seed, secret)``.
* **Cross-process reattach** — a process with *no inherited Python
  state* (the spawn / respawned-worker case) resolves the same store
  from the environment and attaches without rebuilding.
* **Teardown** — shared-memory segments are unlinked on every engine
  exit path, the SIGINT path included; no ``/dev/shm`` leak.
* **Integrity** — corrupt artifacts are quarantined (``*.corrupt``) and
  recomputed, never trusted or silently re-read.
* **Accounting** — a warm campaign reports zero workload compositions
  and zero Dinkelbach solves in telemetry, identically for serial and
  parallel engines.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CampaignInterrupted, ConfigurationError
from repro.harness.exec import (
    EngineTelemetry,
    ExecutionEngine,
    MixSchemeCell,
    engine_from_env,
)
from repro.harness.faults import FaultPlan
from repro.harness.report import render_telemetry
from repro.harness.runconfig import TEST
from repro.harness.sensitivity import build_spec_only_stream_direct
from repro.harness.store import (
    PRECOMPUTE_ENV,
    STORE_DIR_ENV,
    STORE_SHM_ENV,
    PrecomputeStore,
    cached_build_workload,
    cached_spec_stream,
    clear_active_store,
    ensure_workload_trace,
    get_active_store,
    precompute_from_env,
    rmax_token,
    set_active_store,
    store_digest,
    store_stats_delta,
    store_stats_snapshot,
    workload_token,
)
from repro.schemes.untangle import (
    clear_rate_table_cache,
    default_channel_model,
    get_rate_table,
    get_worst_case_rate_table,
    populate_rate_table,
)
from repro.workloads.workload import (
    WorkloadScale,
    build_workload,
    compose_workload_arrays,
)

SPEC, CRYPTO = "gcc_2", "AES-128"
SCALE = WorkloadScale.test()
CHILD = Path(__file__).with_name("_store_child.py")


@pytest.fixture(autouse=True)
def _clean_store_state(monkeypatch):
    """Every test starts with no active store, no env overrides, and an
    empty rate-table memoizer (both are process-global)."""
    for name in (PRECOMPUTE_ENV, STORE_DIR_ENV, STORE_SHM_ENV):
        monkeypatch.delenv(name, raising=False)
    clear_active_store()
    clear_rate_table_cache()
    yield
    clear_active_store()
    clear_rate_table_cache()


def arrays_checksum(arrays: dict[str, np.ndarray]) -> str:
    digest = hashlib.sha256()
    for name in sorted(arrays):
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(arrays[name]).tobytes())
    return digest.hexdigest()


def assert_arrays_equal(a: dict[str, np.ndarray], b: dict[str, np.ndarray]):
    assert sorted(a) == sorted(b)
    for name in a:
        assert a[name].dtype == b[name].dtype, name
        assert np.array_equal(np.asarray(a[name]), np.asarray(b[name])), name


def shm_segments(token: str) -> list[Path]:
    return sorted(Path("/dev/shm").glob(f"repro-{token}-*"))


# ----------------------------------------------------------------------
# Tokens / key schema
# ----------------------------------------------------------------------
class TestTokens:
    def test_workload_token_json_round_trips_to_itself(self):
        token = workload_token(SPEC, CRYPTO, SCALE, 3, 1)
        assert json.loads(json.dumps(token)) == token

    def test_rmax_token_json_round_trips_to_itself(self):
        # Regression: the delay histogram must serialize as lists, not
        # tuples — the stored artifact compares its token against ours
        # after a JSON round-trip, and tuples would quarantine every
        # warm reload.
        model = default_channel_model(64)
        token = rmax_token(model, 4, 150, 0)
        assert json.loads(json.dumps(token)) == token

    def test_digest_sensitive_to_every_field(self):
        base = workload_token(SPEC, CRYPTO, SCALE, 0, 0)
        variants = [
            workload_token("xz_0", CRYPTO, SCALE, 0, 0),
            workload_token(SPEC, "SHA-256", SCALE, 0, 0),
            workload_token(SPEC, CRYPTO, WorkloadScale(), 0, 0),
            workload_token(SPEC, CRYPTO, SCALE, 1, 0),
            workload_token(SPEC, CRYPTO, SCALE, 0, 1),
        ]
        digests = {store_digest(base)} | {store_digest(v) for v in variants}
        assert len(digests) == len(variants) + 1

    def test_timing_jitter_not_part_of_trace_identity(self):
        # Jitter perturbs the assembled core model, never the composed
        # arrays — two jitter settings must share one stored trace.
        token = workload_token(SPEC, CRYPTO, SCALE, 0, 0)
        assert "timing_jitter" not in json.dumps(token)


# ----------------------------------------------------------------------
# compose/assemble split + backend round-trips
# ----------------------------------------------------------------------
class TestBitIdentity:
    def test_store_path_matches_direct_build(self, tmp_path):
        direct = build_workload(SPEC, CRYPTO, SCALE, seed=2, secret=1)
        set_active_store(PrecomputeStore(tmp_path))
        via_store = cached_build_workload(SPEC, CRYPTO, SCALE, seed=2, secret=1)
        assert np.array_equal(direct.stream.addresses, via_store.stream.addresses)
        assert np.array_equal(
            direct.stream.annotations.metric_excluded,
            via_store.stream.annotations.metric_excluded,
        )
        assert np.array_equal(
            direct.stream.annotations.progress_excluded,
            via_store.stream.annotations.progress_excluded,
        )
        assert direct.core_config == via_store.core_config
        assert direct.label == via_store.label

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 5), secret=st.integers(0, 3))
    def test_file_backend_round_trip_any_inputs(self, seed, secret):
        import tempfile

        built = compose_workload_arrays(SPEC, CRYPTO, SCALE, seed=seed, secret=secret)
        token = workload_token(SPEC, CRYPTO, SCALE, seed, secret)
        with tempfile.TemporaryDirectory() as root:
            PrecomputeStore(root).trace_arrays(token, lambda: built)
            # A fresh store instance reads back from disk, not from the
            # attach cache.
            reloaded = PrecomputeStore(root).trace_arrays(
                token, lambda: pytest.fail("must not rebuild on a warm store")
            )
            assert_arrays_equal(built, reloaded)

    def test_spec_stream_store_path_matches_direct(self, tmp_path):
        from repro.workloads.spec import SPEC_BENCHMARKS

        benchmark = SPEC_BENCHMARKS[SPEC]
        direct = build_spec_only_stream_direct(
            benchmark, SCALE.spec_instructions, SCALE.lines_per_mb, 7
        )
        set_active_store(PrecomputeStore(tmp_path))
        via_store = cached_spec_stream(
            benchmark, SCALE.spec_instructions, SCALE.lines_per_mb, 7
        )
        assert np.array_equal(direct.addresses, via_store.addresses)
        assert direct.length == via_store.length

    def test_no_store_is_the_legacy_path(self):
        direct = build_workload(SPEC, CRYPTO, SCALE, seed=1)
        assert get_active_store() is None
        legacy = cached_build_workload(SPEC, CRYPTO, SCALE, seed=1)
        assert np.array_equal(direct.stream.addresses, legacy.stream.addresses)


class TestShmBackend:
    def test_round_trip_and_unlink_on_release(self):
        store = PrecomputeStore()  # shared-memory backend
        token_str = store._backend.token
        built = compose_workload_arrays(SPEC, CRYPTO, SCALE, seed=0)
        served = store.trace_arrays(
            workload_token(SPEC, CRYPTO, SCALE, 0, 0), lambda: built
        )
        assert_arrays_equal(built, served)
        assert shm_segments(token_str), "segment should exist while attached"
        store.release()
        assert shm_segments(token_str) == [], "release must unlink segments"
        # Views handed out before release stay readable: the mapping is
        # kept alive by the views themselves (name already unlinked).
        assert int(np.asarray(served["addresses"])[:16].sum()) == int(
            built["addresses"][:16].sum()
        )

    def test_non_owner_never_creates_segments(self):
        attached = PrecomputeStore(shm_token="feedface")
        built = compose_workload_arrays(SPEC, CRYPTO, SCALE, seed=0)
        served = attached.trace_arrays(
            workload_token(SPEC, CRYPTO, SCALE, 0, 0), lambda: built
        )
        assert_arrays_equal(built, served)
        assert shm_segments("feedface") == []

    def test_spawned_process_reattaches_by_name(self):
        """A fresh interpreter (the spawn worker case) attaches via
        REPRO_STORE_SHM without rebuilding, byte-identically — and its
        exit must not unlink the owner's segment (resource tracker)."""
        store = PrecomputeStore()
        token_str = store._backend.token
        built = ensure_workload_trace(store, SPEC, CRYPTO, SCALE, 0)
        try:
            report = _run_child({STORE_SHM_ENV: token_str})
            assert report["sha256"] == arrays_checksum(built)
            assert report["hits"] == 1 and report["misses"] == 0
            assert report["builds"] == 0
            # The child exited; the owner's segment must still be live.
            assert shm_segments(token_str)
        finally:
            store.release()
        assert shm_segments(token_str) == []


def _run_child(env_overrides: dict[str, str]) -> dict:
    env = dict(os.environ)
    for name in (PRECOMPUTE_ENV, STORE_DIR_ENV, STORE_SHM_ENV):
        env.pop(name, None)
    env.update(env_overrides)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
    result = subprocess.run(
        [sys.executable, str(CHILD), SPEC, CRYPTO, "0"],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    return json.loads(result.stdout.strip().splitlines()[-1])


class TestSpawnReattachFile:
    def test_spawned_process_reattaches_by_directory(self, tmp_path):
        store = PrecomputeStore(tmp_path / "store")
        built = ensure_workload_trace(store, SPEC, CRYPTO, SCALE, 0)
        report = _run_child({STORE_DIR_ENV: str(tmp_path / "store")})
        assert report["sha256"] == arrays_checksum(built)
        assert report["hits"] == 1 and report["misses"] == 0
        assert report["builds"] == 0


# ----------------------------------------------------------------------
# Corruption / quarantine
# ----------------------------------------------------------------------
class TestQuarantine:
    def test_corrupt_trace_array_quarantined_and_rebuilt(self, tmp_path):
        store = PrecomputeStore(tmp_path)
        token = workload_token(SPEC, CRYPTO, SCALE, 0, 0)
        original = store.trace_arrays(
            token, lambda: compose_workload_arrays(SPEC, CRYPTO, SCALE, seed=0)
        )
        original = {k: np.asarray(v).copy() for k, v in original.items()}
        # A *valid* npy with wrong data: only the checksum check catches it.
        victim = next((tmp_path / "traces").rglob("addresses.npy"))
        np.save(victim, np.zeros(4, dtype=np.int64))

        before = store_stats_snapshot()
        fresh = PrecomputeStore(tmp_path)
        rebuilt = fresh.trace_arrays(
            token, lambda: compose_workload_arrays(SPEC, CRYPTO, SCALE, seed=0)
        )
        delta = store_stats_delta(before, store_stats_snapshot())
        assert_arrays_equal(original, rebuilt)
        assert delta["store_quarantined_trace"] == 1
        assert delta["store_trace_misses"] == 1
        assert delta["workload_builds"] == 1
        assert list((tmp_path / "traces").rglob("*.corrupt"))

    def test_garbled_meta_quarantined(self, tmp_path):
        store = PrecomputeStore(tmp_path)
        token = workload_token(SPEC, CRYPTO, SCALE, 0, 0)
        store.trace_arrays(
            token, lambda: compose_workload_arrays(SPEC, CRYPTO, SCALE, seed=0)
        )
        next((tmp_path / "traces").rglob("meta.json")).write_text("{not json")
        rebuilt = PrecomputeStore(tmp_path).trace_arrays(
            token, lambda: compose_workload_arrays(SPEC, CRYPTO, SCALE, seed=0)
        )
        assert rebuilt["addresses"].shape[0] > 0
        assert list((tmp_path / "traces").rglob("*.corrupt"))

    def test_corrupt_rmax_artifact_quarantined_and_recomputed(self, tmp_path):
        set_active_store(PrecomputeStore(tmp_path))
        first = get_rate_table(64, capacity=2).entries()
        artifact = next((tmp_path / "rmax").glob("*.json"))
        artifact.write_text(artifact.read_text().replace('"entries"', '"entr"'))

        clear_rate_table_cache()
        set_active_store(PrecomputeStore(tmp_path))
        before = store_stats_snapshot()
        second = get_rate_table(64, capacity=2).entries()
        delta = store_stats_delta(before, store_stats_snapshot())
        assert second == first  # exact: same solver, same seed
        assert delta["store_quarantined_rmax"] == 1
        assert delta["rmax_solves"] == len(first)
        assert list((tmp_path / "rmax").glob("*.corrupt"))


# ----------------------------------------------------------------------
# Rate-table memoizer + artifact
# ----------------------------------------------------------------------
class TestRateTableMemoizer:
    def test_key_normalization_shares_one_entry(self):
        a = get_rate_table(64, capacity=2)
        b = get_rate_table(64, 16, 4, 2)  # positional spelling
        assert a is b

    def test_worst_case_never_pollutes_optimized_cache(self):
        optimized = get_rate_table(64, capacity=2)
        worst = get_worst_case_rate_table(64)
        assert worst is not optimized
        assert worst.capacity == 1
        assert get_rate_table(64, capacity=2) is optimized
        assert get_worst_case_rate_table(64) is worst

    def test_clear_hook_drops_memo(self):
        a = get_rate_table(64, capacity=2)
        clear_rate_table_cache()
        assert get_rate_table(64, capacity=2) is not a

    def test_warm_store_skips_every_solve(self, tmp_path):
        set_active_store(PrecomputeStore(tmp_path))
        first = get_rate_table(64, capacity=2).entries()
        assert list((tmp_path / "rmax").glob("*.json"))

        clear_rate_table_cache()
        set_active_store(PrecomputeStore(tmp_path))
        before = store_stats_snapshot()
        second = get_rate_table(64, capacity=2).entries()
        delta = store_stats_delta(before, store_stats_snapshot())
        assert second == first
        assert delta.get("rmax_solves", 0) == 0
        assert delta["store_rmax_hits"] == 1

    def test_parallel_populate_bit_identical_to_serial(self, tmp_path):
        set_active_store(PrecomputeStore(tmp_path / "par"))
        populate_rate_table(64, capacity=3, jobs=2)
        parallel = get_rate_table(64, capacity=3).entries()

        clear_rate_table_cache()
        set_active_store(PrecomputeStore(tmp_path / "ser"))
        populate_rate_table(64, capacity=3, jobs=1)
        serial = get_rate_table(64, capacity=3).entries()
        assert parallel == serial

    def test_populate_worst_case_fills_the_unopt_key(self, tmp_path):
        set_active_store(PrecomputeStore(tmp_path))
        populate_rate_table(64, worst_case=True)
        before = store_stats_snapshot()
        table = get_worst_case_rate_table(64)
        delta = store_stats_delta(before, store_stats_snapshot())
        assert table.capacity == 1
        assert delta.get("rmax_solves", 0) == 0  # memo hit, no re-solve


# ----------------------------------------------------------------------
# Environment / CLI wiring
# ----------------------------------------------------------------------
class TestPrecomputeFromEnv:
    def test_default_is_on(self):
        assert precompute_from_env() is True

    @pytest.mark.parametrize("value", ["off", "0", "false", "NO"])
    def test_falsy_values_disable(self, monkeypatch, value):
        monkeypatch.setenv(PRECOMPUTE_ENV, value)
        assert precompute_from_env() is False

    @pytest.mark.parametrize("value", ["on", "1", "TRUE", "yes"])
    def test_truthy_values_enable(self, monkeypatch, value):
        monkeypatch.setenv(PRECOMPUTE_ENV, value)
        assert precompute_from_env() is True

    def test_malformed_value_rejected_with_accepted_forms(self, monkeypatch):
        monkeypatch.setenv(PRECOMPUTE_ENV, "maybe")
        with pytest.raises(ConfigurationError) as excinfo:
            precompute_from_env()
        message = str(excinfo.value)
        assert "REPRO_PRECOMPUTE" in message
        assert "'maybe'" in message  # the offending value
        assert "on" in message and "off" in message  # the accepted forms


class TestActiveStoreResolution:
    def test_explicit_activation_wins_over_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path / "env"))
        explicit = PrecomputeStore(tmp_path / "explicit")
        set_active_store(explicit)
        assert get_active_store() is explicit
        clear_active_store()
        resolved = get_active_store()
        assert resolved is not None
        assert resolved.directory == tmp_path / "env"

    def test_env_off_resolves_no_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path))
        monkeypatch.setenv(PRECOMPUTE_ENV, "off")
        assert get_active_store() is None

    def test_shm_token_resolves_attaching_store(self, monkeypatch):
        monkeypatch.setenv(STORE_SHM_ENV, "cafecafe")
        store = get_active_store()
        assert store is not None and store.directory is None
        assert store._backend.owner is False


class TestEngineFromEnvStore:
    def test_store_survives_result_cache_off(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", "0")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        engine = engine_from_env()
        assert engine.cache is None
        assert engine.store is not None
        assert engine.store.directory == tmp_path / "store"

    def test_precompute_off_disables_store(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv(PRECOMPUTE_ENV, "off")
        assert engine_from_env().store is None

    def test_explicit_store_dir_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path / "elsewhere"))
        engine = engine_from_env()
        assert engine.store.directory == tmp_path / "elsewhere"

    def test_no_directory_falls_back_to_shared_memory(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        engine = engine_from_env()
        assert engine.store is not None
        assert engine.store.directory is None

    def test_malformed_precompute_rejected(self, monkeypatch):
        monkeypatch.setenv(PRECOMPUTE_ENV, "sometimes")
        with pytest.raises(ConfigurationError, match="REPRO_PRECOMPUTE"):
            engine_from_env()


class TestCli:
    def test_flag_disables_store_and_env_for_workers(self, tmp_path, monkeypatch):
        from repro.__main__ import build_engine, build_parser

        monkeypatch.delenv(PRECOMPUTE_ENV, raising=False)
        args = build_parser().parse_args(
            ["--cache-dir", str(tmp_path), "--no-precompute-store", "mix", "1"]
        )
        engine = build_engine(args)
        assert engine.store is None
        # The decision reaches serial cells and workers through the env.
        assert os.environ[PRECOMPUTE_ENV] == "off"

    def test_default_store_rides_with_cache_dir(self, tmp_path):
        from repro.__main__ import build_engine, build_parser

        args = build_parser().parse_args(["--cache-dir", str(tmp_path), "mix", "1"])
        engine = build_engine(args)
        assert engine.store is not None
        assert engine.store.directory == tmp_path / "store"

    def test_flag_conflicts_with_env_enable(self, monkeypatch, tmp_path):
        from repro.__main__ import build_engine, build_parser

        monkeypatch.setenv(PRECOMPUTE_ENV, "on")
        args = build_parser().parse_args(
            ["--cache-dir", str(tmp_path), "--no-precompute-store", "mix", "1"]
        )
        with pytest.raises(ConfigurationError, match="conflicts"):
            build_engine(args)

    def test_main_reports_conflict_as_exit_2(self, monkeypatch, capsys, tmp_path):
        from repro.__main__ import main

        monkeypatch.setenv(PRECOMPUTE_ENV, "1")
        code = main(
            ["--cache-dir", str(tmp_path), "--no-precompute-store", "mix", "1"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Engine integration: populate, attach, accounting, teardown
# ----------------------------------------------------------------------
PAIRS = ((SPEC, CRYPTO),)
SCHEMES = ("untangle", "static")


def _cells():
    return [
        MixSchemeCell(pairs=PAIRS, scheme=scheme, profile=TEST)
        for scheme in SCHEMES
    ]


def _encodes(outcomes):
    return [MixSchemeCell.encode(o.value) for o in outcomes]


class TestEngineIntegration:
    @pytest.fixture(scope="class")
    def baseline(self):
        """Store-less engine results (the legacy path) for identity checks."""
        clear_rate_table_cache()
        clear_active_store()
        os.environ.pop(STORE_DIR_ENV, None)
        os.environ.pop(STORE_SHM_ENV, None)
        engine = ExecutionEngine(jobs=1)
        encodes = _encodes(engine.run(_cells()))
        clear_rate_table_cache()
        return encodes

    def test_cold_then_warm_campaign(self, baseline, tmp_path):
        cold = ExecutionEngine(jobs=1, store=PrecomputeStore(tmp_path / "s"))
        cold_outcomes = cold.run(_cells())
        assert _encodes(cold_outcomes) == baseline
        snap = cold.telemetry.snapshot()
        # Populate composed the one distinct trace; both cells attached.
        assert snap["workload_builds"] == 1
        assert snap["store_trace_misses"] == 1
        assert snap["store_trace_hits"] >= 2
        assert snap["rmax_solves"] > 0
        assert snap["store_rmax_misses"] == 1

        clear_rate_table_cache()
        warm = ExecutionEngine(jobs=1, store=PrecomputeStore(tmp_path / "s"))
        warm_outcomes = warm.run(_cells())
        assert _encodes(warm_outcomes) == baseline
        snap = warm.telemetry.snapshot()
        # The acceptance bar: a warm campaign regenerates nothing.
        assert snap["workload_builds"] == 0
        assert snap["rmax_solves"] == 0
        assert snap["store_trace_misses"] == 0
        assert snap["store_quarantines"] == 0
        assert snap["store_trace_hits"] >= 2
        assert snap["store_trace_bytes"] > 0
        assert snap["store_rmax_hits"] >= 1

    def test_parallel_workers_attach_and_account(self, baseline, tmp_path):
        cold = ExecutionEngine(jobs=1, store=PrecomputeStore(tmp_path / "s"))
        cold.run(_cells())
        clear_rate_table_cache()

        warm = ExecutionEngine(jobs=2, store=PrecomputeStore(tmp_path / "s"))
        outcomes = warm.run(_cells())
        assert _encodes(outcomes) == baseline
        snap = warm.telemetry.snapshot()
        # Worker deltas are shipped home: the accounting matches jobs=1.
        assert snap["workload_builds"] == 0
        assert snap["rmax_solves"] == 0
        assert snap["store_trace_misses"] == 0

    def test_respawned_worker_reattaches_after_crash(self, baseline, tmp_path):
        state = tmp_path / "faults"
        state.mkdir()
        engine = ExecutionEngine(
            jobs=2,
            retries=1,
            store=PrecomputeStore(tmp_path / "s"),
            faults=FaultPlan(crash_cells=("untangle",), state_dir=str(state)),
        )
        outcomes = engine.run(_cells())
        assert engine.telemetry.worker_crashes == 1
        assert engine.telemetry.workers_respawned >= 1
        assert outcomes[0].status == "computed"
        assert outcomes[0].attempts == 2
        assert _encodes(outcomes) == baseline


class _InterruptCell:
    """Serial cell that populates a trace need, then simulates Ctrl-C."""

    label = "interrupt[probe]"

    def __init__(self, observed: list):
        self.observed = observed

    def cache_token(self):
        return {"kind": "interrupt-probe"}

    def store_needs(self):
        return [("trace", SPEC, CRYPTO, SCALE, 0)]

    def execute(self):
        store = get_active_store()
        self.observed.append(shm_segments(store._backend.token))
        raise KeyboardInterrupt

    @staticmethod
    def cycles_of(value):
        return None

    @staticmethod
    def encode(value):
        return {}

    @staticmethod
    def decode(payload):
        return None


class TestTeardown:
    def test_sigint_path_unlinks_shared_memory(self):
        store = PrecomputeStore()  # shm backend
        token_str = store._backend.token
        observed: list = []
        engine = ExecutionEngine(jobs=1, retries=0, store=store)
        with pytest.raises(CampaignInterrupted):
            engine.run([_InterruptCell(observed)])
        # Populate really placed the trace in shared memory mid-run...
        assert observed and observed[0]
        # ...and the interrupt path unlinked every segment and scrubbed
        # the env so no later worker reattaches to a dead name.
        assert shm_segments(token_str) == []
        assert STORE_SHM_ENV not in os.environ
        assert engine.telemetry.interrupted


# ----------------------------------------------------------------------
# Telemetry plumbing
# ----------------------------------------------------------------------
class TestTelemetry:
    def test_snapshot_carries_store_keys(self):
        snap = EngineTelemetry().snapshot()
        for key in (
            "store_trace_hits",
            "store_trace_misses",
            "store_trace_bytes",
            "store_rmax_hits",
            "store_rmax_misses",
            "store_quarantines",
            "workload_builds",
            "rmax_solves",
        ):
            assert key in snap and snap[key] == 0

    def test_accounting_invariant_untouched_by_store_fields(self):
        telemetry = EngineTelemetry()
        telemetry.absorb_store(
            {"store_trace_hits": 3, "workload_builds": 1, "rmax_solves": 14}
        )
        snap = telemetry.snapshot()
        assert (
            snap["computed"] + snap["hit"] + snap["replayed"] + snap["failed"]
            == snap["total"]
        )
        assert snap["store_trace_hits"] == 3

    def test_render_telemetry_reports_store_lines(self):
        telemetry = EngineTelemetry()
        telemetry.absorb_store(
            {
                "store_trace_hits": 4,
                "store_trace_bytes": 316728,
                "store_rmax_hits": 2,
            }
        )
        text = render_telemetry(telemetry)
        assert "store:" in text
        assert "rebuilt:" in text
        assert "KiB" in text

    def test_render_telemetry_silent_without_store_activity(self):
        assert "store:" not in render_telemetry(EngineTelemetry())

    def test_quarantine_line_rendered(self):
        telemetry = EngineTelemetry()
        telemetry.absorb_store(
            {"store_trace_hits": 1, "store_quarantined_rmax": 2}
        )
        assert "store quarantined: 2" in render_telemetry(telemetry)

    def test_snapshot_delta_roundtrip(self):
        before = store_stats_snapshot()
        compose_workload_arrays(SPEC, CRYPTO, SCALE, seed=0)
        delta = store_stats_delta(before, store_stats_snapshot())
        assert delta == {"workload_builds": 1}
