"""Tests for figure/table generators and their text rendering."""

import pytest

from repro.harness.experiment import run_mix
from repro.harness.figures import figure_group
from repro.harness.report import (
    render_active_attacker,
    render_distributions,
    render_figure_group,
    render_sensitivity,
    render_table6,
    size_label,
)
from repro.harness.runconfig import TEST
from repro.harness.sensitivity import run_sensitivity_curve
from repro.harness.tables import (
    ActiveAttackerSummary,
    CampaignDistributions,
    Table6,
    table6_row,
)
from repro.workloads.spec import SPEC_BENCHMARKS


@pytest.fixture(scope="module")
def mix1_result():
    """One shared small Mix 1 run for all figure/table tests."""
    return run_mix(1, TEST)


class TestFigureGroup:
    def test_panels_populated(self, mix1_result):
        group = figure_group(1, TEST, mix_result=mix1_result)
        assert group.mix_id == 1
        assert group.sensitive_count == 2
        assert group.total_demand_mb == pytest.approx(14.6, abs=1.1)
        assert len(group.rows) == 8
        assert "time" in group.geomean_speedups
        assert "untangle" in group.geomean_speedups

    def test_sensitive_flags_match_models(self, mix1_result):
        group = figure_group(1, TEST, mix_result=mix1_result)
        for row in group.rows:
            spec = row.label.split("+")[0]
            assert row.llc_sensitive == SPEC_BENCHMARKS[spec].llc_sensitive

    def test_title_matches_paper_format(self, mix1_result):
        group = figure_group(1, TEST, mix_result=mix1_result)
        assert group.title.startswith("Mix 1: 2 LLC-sensitive")
        assert "Total LLC size: 16MB" in group.title


class TestTable6:
    def test_row_extraction(self, mix1_result):
        row = table6_row(1, mix1_result)
        assert row.time_bits_per_assessment == pytest.approx(3.17, abs=0.01)
        assert row.untangle_bits_per_assessment < row.time_bits_per_assessment
        assert 0.0 < row.per_assessment_reduction <= 1.0

    def test_average_reduction(self, mix1_result):
        table = Table6(rows=[table6_row(1, mix1_result)])
        assert table.average_reduction == pytest.approx(
            table.rows[0].per_assessment_reduction
        )

    def test_empty_table(self):
        assert Table6(rows=[]).average_reduction == 0.0


class TestCampaignDistributions:
    def test_add_mix_result_covers_every_scheme_workload(self, mix1_result):
        dist = CampaignDistributions()
        dist.add_mix_result(mix1_result)
        assert dist.schemes == sorted(mix1_result.runs)
        per_scheme = len(mix1_result.labels)
        assert dist.count == per_scheme * len(mix1_result.runs)
        summary = dist.summary()
        for scheme, run in mix1_result.runs.items():
            stats = summary[scheme]
            assert stats["ipc"]["count"] == per_scheme
            # Welford agrees with the exact per-cell values: the
            # sketches only summarize, never distort, the stream.
            ipcs = [w.ipc for w in run.workloads]
            assert stats["ipc"]["mean"] == pytest.approx(
                sum(ipcs) / len(ipcs)
            )
            assert stats["ipc"]["min"] == min(ipcs)
            assert stats["ipc"]["max"] == max(ipcs)
            leakages = [w.bits_per_assessment for w in run.workloads]
            assert stats["leakage_bits"]["max"] == max(leakages)

    def test_constant_memory_accumulation(self):
        """State size is independent of observation count."""
        dist = CampaignDistributions()
        for i in range(10_000):
            dist.add("untangle", leakage_bits=i % 7 / 10.0, ipc=1.0 + i % 3)
        assert dist.count == 10_000
        stats = dist.summary()["untangle"]
        assert stats["ipc"]["count"] == 10_000
        assert stats["leakage_bits"]["min"] == 0.0
        assert stats["leakage_bits"]["max"] == pytest.approx(0.6)

    def test_empty_distribution(self):
        dist = CampaignDistributions()
        assert dist.schemes == []
        assert dist.summary() == {}


class TestRendering:
    def test_size_label(self):
        assert size_label(256) == "2MB"
        assert size_label(16) == "128kB"
        assert size_label(1024) == "8MB"

    def test_render_figure_group(self, mix1_result):
        group = figure_group(1, TEST, mix_result=mix1_result)
        text = render_figure_group(group)
        assert "Mix 1" in text
        assert "gcc_2+EdDSA" in text
        assert "Geo. mean" in text

    def test_render_table6(self, mix1_result):
        table = Table6(rows=[table6_row(1, mix1_result)])
        text = render_table6(table)
        assert "Mix 1" in text
        assert "paper: 78%" in text

    def test_render_sensitivity(self):
        curve = run_sensitivity_curve(SPEC_BENCHMARKS["imagick_0"], TEST)
        text = render_sensitivity({"imagick_0": curve})
        assert "imagick_0" in text
        assert "8MB" in text

    def test_render_distributions(self, mix1_result):
        dist = CampaignDistributions()
        dist.add_mix_result(mix1_result)
        text = render_distributions(dist)
        assert "Campaign distributions" in text
        assert "untangle" in text
        assert "leakage b/a" in text
        assert "p50" in text

    def test_render_distributions_empty(self):
        assert render_distributions(CampaignDistributions()) == (
            "(no distribution data)"
        )

    def test_render_active_attacker(self):
        summary = ActiveAttackerSummary(
            optimized_bits_per_assessment=0.7,
            unoptimized_bits_per_assessment=3.8,
        )
        text = render_active_attacker(summary)
        assert "3.80" in text
        assert "5.4x" in text
