"""Tests for JSON export of results."""

import json

import pytest

from repro.harness.experiment import run_custom_mix
from repro.harness.export import (
    mix_result_to_dict,
    scheme_run_to_dict,
    sensitivity_to_dict,
    table6_to_dict,
    write_json,
)
from repro.harness.runconfig import TEST
from repro.harness.sensitivity import SensitivityCurve
from repro.harness.tables import Table6, Table6Row

PAIRS = [("parest_0", "AES-128"), ("xz_0", "SHA-256")]


@pytest.fixture(scope="module")
def result():
    return run_custom_mix(PAIRS, TEST, schemes=("static", "untangle"))


class TestMixExport:
    def test_roundtrips_through_json(self, result):
        payload = mix_result_to_dict(result)
        text = json.dumps(payload)
        assert json.loads(text) == payload

    def test_contains_all_schemes_and_workloads(self, result):
        payload = mix_result_to_dict(result)
        assert set(payload["runs"]) == {"static", "untangle"}
        assert payload["labels"] == [
            "parest_0+AES-128", "xz_0+SHA-256",
        ]
        for run in payload["runs"].values():
            assert len(run["workloads"]) == 2

    def test_normalized_ipc_present_with_static(self, result):
        payload = mix_result_to_dict(result)
        assert "untangle" in payload["normalized_ipc"]
        assert "untangle" in payload["geomean_speedups"]

    def test_paper_mb_conversion(self, result):
        payload = scheme_run_to_dict(result.runs["static"])
        workload = payload["workloads"][0]
        lines = workload["partition_quartiles_lines"][2]
        mb = workload["partition_quartiles_paper_mb"][2]
        assert mb == pytest.approx(lines / 128)


class TestOtherExports:
    def test_sensitivity_export(self):
        curve = SensitivityCurve("x", (16, 1024), (0.2, 1.0))
        payload = sensitivity_to_dict({"x": curve})
        assert payload["x"]["llc_sensitive"] is True
        assert payload["x"]["sizes_paper_mb"] == [0.125, 8.0]
        json.dumps(payload)

    def test_table6_export(self):
        table = Table6(
            rows=[Table6Row(1, 3.17, 100.0, 0.4, 10.0)]
        )
        payload = table6_to_dict(table)
        assert payload["rows"][0]["mix_id"] == 1
        assert payload["average_reduction"] == pytest.approx(1 - 0.4 / 3.17)
        json.dumps(payload)

    def test_write_json(self, tmp_path):
        path = write_json({"a": 1}, tmp_path / "out" / "data.json")
        assert json.loads(path.read_text()) == {"a": 1}
