"""Child process for cross-process precompute-store reattach tests.

Run as ``python _store_child.py <spec> <crypto> <seed>`` with the store
identity in the environment (``REPRO_STORE_DIR`` or
``REPRO_STORE_SHM``) — exactly how a *spawned* engine worker finds the
campaign's store: no inherited Python state, only the environment.
Prints a JSON line with the checksum of the attached arrays and the
child's store counters, so the parent test can assert byte-identity and
that the child attached (hit) instead of rebuilding (miss).
"""

import hashlib
import json
import sys

import numpy as np

from repro.harness.store import (
    ensure_workload_trace,
    get_active_store,
    store_stats_snapshot,
)
from repro.workloads.workload import WorkloadScale


def main() -> int:
    spec, crypto, seed = sys.argv[1], sys.argv[2], int(sys.argv[3])
    store = get_active_store()
    if store is None:
        print(json.dumps({"error": "no store resolved from environment"}))
        return 1
    arrays = ensure_workload_trace(
        store, spec, crypto, WorkloadScale.test(), seed
    )
    digest = hashlib.sha256()
    for name in sorted(arrays):
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(arrays[name]).tobytes())
    stats = store_stats_snapshot()
    print(
        json.dumps(
            {
                "sha256": digest.hexdigest(),
                "hits": stats["store_trace_hits"],
                "misses": stats["store_trace_misses"],
                "builds": stats["workload_builds"],
            }
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
