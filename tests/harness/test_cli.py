"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import build_parser, main
from repro.obs.trace import TRACE_ENV


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mix_requires_valid_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mix", "17"])

    def test_profile_choices(self):
        args = build_parser().parse_args(["--profile", "test", "table6"])
        assert args.profile == "test"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--profile", "huge", "table6"])

    def test_rmax_capacity(self):
        args = build_parser().parse_args(["rmax", "--capacity", "4"])
        assert args.capacity == 4

    def test_observability_flags(self):
        args = build_parser().parse_args(
            ["--trace", "t.jsonl", "--metrics-out", "m.prom", "mix", "1"]
        )
        assert args.trace == "t.jsonl"
        assert args.metrics_out == "m.prom"

    def test_trace_summarize_takes_a_path(self):
        args = build_parser().parse_args(["trace-summarize", "t.jsonl"])
        assert args.command == "trace-summarize"
        assert args.trace_path == "t.jsonl"


class TestExecution:
    def test_rmax_command(self, capsys):
        assert main(["--profile", "test", "rmax", "--capacity", "2"]) == 0
        out = capsys.readouterr().out
        assert "R_max table" in out
        assert "m=  0" in out

    def test_mix_command_small_with_observability(
        self, capsys, monkeypatch, tmp_path
    ):
        """One traced campaign end to end: figures on stdout, a parseable
        trace JSONL, and a metrics textfile + JSON snapshot on exit."""
        monkeypatch.setenv(TRACE_ENV, "0")  # restored after the test
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.prom"
        assert (
            main(
                [
                    "--profile",
                    "test",
                    "--no-cache",
                    "--trace",
                    str(trace),
                    "--metrics-out",
                    str(metrics),
                    "mix",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Mix 1" in out
        assert "Geo. mean" in out
        names = {
            json.loads(line)["name"]
            for line in trace.read_text().splitlines()
        }
        assert {"engine.run", "cell.compute", "sim.run"} <= names
        prom = metrics.read_text()
        assert "repro_exec_cells_total" in prom
        assert "repro_sim_runs_total" in prom
        snapshot = json.loads((tmp_path / "metrics.prom.json").read_text())
        assert "repro_exec_cells_total" in snapshot

    def test_trace_summarize_command(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        trace.write_text(
            json.dumps(
                {
                    "kind": "span",
                    "name": "cell.compute",
                    "t0": 0.0,
                    "t1": 2.0,
                    "dur": 2.0,
                    "wall": 0.0,
                    "pid": 1,
                    "id": "1-1",
                    "parent": None,
                    "attrs": {},
                }
            )
            + "\n"
        )
        assert main(["trace-summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "Trace summary" in out
        assert "cell.compute" in out


class TestSchemesFlag:
    def test_parser_accepts_registered_names(self):
        args = build_parser().parse_args(
            ["mix", "1", "--schemes", "static", "threshold"]
        )
        assert args.schemes == ["static", "threshold"]

    def test_parser_rejects_unregistered_names(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mix", "1", "--schemes", "nosuch"])

    def test_ad_hoc_scheme_set_renders_plain_table(self, capsys):
        assert (
            main(
                [
                    "--profile",
                    "test",
                    "--no-cache",
                    "mix",
                    "1",
                    "--schemes",
                    "static",
                    "threshold",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Mix 1: static, threshold" in out
        assert "Geomean speedup over static" in out
        # The figure renderer (which needs time/untangle columns) must
        # not have been used.
        assert "Maintain fraction" not in out


class TestScenarioCommand:
    def test_runs_a_spec_file(self, capsys, tmp_path):
        spec = tmp_path / "tiny.toml"
        spec.write_text(
            "[scenario]\n"
            'name = "tiny"\n'
            'profile = "test"\n'
            'schemes = ["static"]\n'
            "[[scenario.workloads]]\n"
            'label = "pair"\n'
            'pairs = [["gcc_0", "RSA-2048"]]\n'
        )
        assert main(["--no-cache", "scenario", str(spec)]) == 0
        out = capsys.readouterr().out
        assert "Scenario 'tiny'" in out
        assert "scenario[tiny]" in out

    def test_bad_spec_exits_2(self, capsys, tmp_path):
        spec = tmp_path / "bad.toml"
        spec.write_text("[scenario]\nname = 'x'\nmixes = [1]\nschemes = ['nosuch']\n")
        assert main(["--no-cache", "scenario", str(spec)]) == 2
        assert "unknown scheme" in capsys.readouterr().err


class TestConformCommand:
    def test_quick_battery_for_one_scheme(self, capsys):
        assert main(["conform", "static", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "static  (profile: test)" in out
        assert "[PASS] kernel-identity" in out
        assert "Conformance OK" in out

    def test_unknown_scheme_exits_2(self, capsys):
        assert main(["conform", "nosuch"]) == 2
        assert "unregistered scheme" in capsys.readouterr().err

    def test_names_conflict_with_all(self, capsys):
        assert main(["conform", "--all", "static"]) == 2
        assert "not both" in capsys.readouterr().err

    def test_quick_conflicts_with_full(self, capsys):
        assert main(["conform", "static", "--quick", "--full"]) == 2
        assert "conflict" in capsys.readouterr().err

    def test_failed_check_exits_1(self, capsys, monkeypatch):
        # A scheme registered as untangle-compliant whose factory
        # produces the time-based scheme must fail the battery — and
        # the CLI must exit non-zero for CI to notice.
        from repro.registry import REGISTRY, Registration
        from repro.schemes.timebased import TimeScheme

        registration = REGISTRY.get("scheme", "time")
        impostor = Registration(
            kind="scheme",
            name="impostor",
            factory=registration.factory,
            untangle_compliant=True,
            produces=(TimeScheme,),
        )
        with REGISTRY.temporary(impostor):
            assert main(["conform", "impostor", "--quick"]) == 1
        out = capsys.readouterr().out
        assert "[FAIL]" in out
        assert "Conformance FAILED" in out
