"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mix_requires_valid_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mix", "17"])

    def test_profile_choices(self):
        args = build_parser().parse_args(["--profile", "test", "table6"])
        assert args.profile == "test"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--profile", "huge", "table6"])

    def test_rmax_capacity(self):
        args = build_parser().parse_args(["rmax", "--capacity", "4"])
        assert args.capacity == 4


class TestExecution:
    def test_rmax_command(self, capsys):
        assert main(["--profile", "test", "rmax", "--capacity", "2"]) == 0
        out = capsys.readouterr().out
        assert "R_max table" in out
        assert "m=  0" in out

    def test_mix_command_small(self, capsys):
        assert main(["--profile", "test", "mix", "1"]) == 0
        out = capsys.readouterr().out
        assert "Mix 1" in out
        assert "Geo. mean" in out
