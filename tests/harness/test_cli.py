"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import build_parser, main
from repro.obs.trace import TRACE_ENV


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mix_requires_valid_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mix", "17"])

    def test_profile_choices(self):
        args = build_parser().parse_args(["--profile", "test", "table6"])
        assert args.profile == "test"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--profile", "huge", "table6"])

    def test_rmax_capacity(self):
        args = build_parser().parse_args(["rmax", "--capacity", "4"])
        assert args.capacity == 4

    def test_observability_flags(self):
        args = build_parser().parse_args(
            ["--trace", "t.jsonl", "--metrics-out", "m.prom", "mix", "1"]
        )
        assert args.trace == "t.jsonl"
        assert args.metrics_out == "m.prom"

    def test_trace_summarize_takes_a_path(self):
        args = build_parser().parse_args(["trace-summarize", "t.jsonl"])
        assert args.command == "trace-summarize"
        assert args.trace_path == "t.jsonl"


class TestExecution:
    def test_rmax_command(self, capsys):
        assert main(["--profile", "test", "rmax", "--capacity", "2"]) == 0
        out = capsys.readouterr().out
        assert "R_max table" in out
        assert "m=  0" in out

    def test_mix_command_small_with_observability(
        self, capsys, monkeypatch, tmp_path
    ):
        """One traced campaign end to end: figures on stdout, a parseable
        trace JSONL, and a metrics textfile + JSON snapshot on exit."""
        monkeypatch.setenv(TRACE_ENV, "0")  # restored after the test
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.prom"
        assert (
            main(
                [
                    "--profile",
                    "test",
                    "--no-cache",
                    "--trace",
                    str(trace),
                    "--metrics-out",
                    str(metrics),
                    "mix",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Mix 1" in out
        assert "Geo. mean" in out
        names = {
            json.loads(line)["name"]
            for line in trace.read_text().splitlines()
        }
        assert {"engine.run", "cell.compute", "sim.run"} <= names
        prom = metrics.read_text()
        assert "repro_exec_cells_total" in prom
        assert "repro_sim_runs_total" in prom
        snapshot = json.loads((tmp_path / "metrics.prom.json").read_text())
        assert "repro_exec_cells_total" in snapshot

    def test_trace_summarize_command(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        trace.write_text(
            json.dumps(
                {
                    "kind": "span",
                    "name": "cell.compute",
                    "t0": 0.0,
                    "t1": 2.0,
                    "dur": 2.0,
                    "wall": 0.0,
                    "pid": 1,
                    "id": "1-1",
                    "parent": None,
                    "attrs": {},
                }
            )
            + "\n"
        )
        assert main(["trace-summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "Trace summary" in out
        assert "cell.compute" in out
