"""Startup reaping of SIGKILL-orphaned shm segments and fault state.

Unit tests drive :mod:`repro.harness.reaper` against synthetic roots so
the ownership rules are pinned exactly: dead owner → reaped, live owner
→ kept, no readable owner → kept until conservatively old. The
integration test orphans a *real* ``/dev/shm`` segment by SIGKILLing a
child's whole process group (resource tracker included, as an OOM kill
would) and proves the next startup sweep reclaims it.
"""

from __future__ import annotations

import json
import os
import signal
import struct
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.harness.faults import STATE_DIR_PREFIX, STATE_PID_FILE
from repro.harness.reaper import (
    FAULT_STATE_UNKNOWN_OWNER_AGE,
    SHM_ROOT,
    SHM_UNKNOWN_OWNER_AGE,
    reap_orphan_fault_state,
    reap_orphan_shm,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
CHILD = Path(__file__).with_name("_reaper_child.py")


@pytest.fixture()
def dead_pid() -> int:
    """A PID guaranteed to name no live process (just-reaped child)."""
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait(timeout=30)
    return proc.pid


def make_segment(root: Path, name: str, owner_pid: int | None) -> Path:
    """Synthesize a store-segment file with the real header layout."""
    header: dict = {"format": 1, "arrays": {}}
    if owner_pid is not None:
        header["owner_pid"] = owner_pid
    blob = json.dumps(header).encode("utf-8")
    path = root / name
    path.write_bytes(struct.pack("<Q", len(blob)) + blob + b"\0" * 64)
    return path


def age(path: Path, seconds: float) -> None:
    stamp = time.time() - seconds
    os.utime(path, (stamp, stamp))


class TestShmSweep:
    def test_dead_owner_is_reaped(self, tmp_path, dead_pid):
        path = make_segment(tmp_path, "repro-tok-aaaa", dead_pid)
        assert reap_orphan_shm(tmp_path) == ["repro-tok-aaaa"]
        assert not path.exists()

    def test_live_owner_is_kept(self, tmp_path):
        path = make_segment(tmp_path, "repro-tok-bbbb", os.getpid())
        assert reap_orphan_shm(tmp_path) == []
        assert path.exists()

    def test_unreadable_header_kept_until_old(self, tmp_path):
        path = tmp_path / "repro-torn"
        path.write_bytes(b"\xff" * 32)  # torn write: no parseable header
        assert reap_orphan_shm(tmp_path) == []
        assert path.exists()
        age(path, SHM_UNKNOWN_OWNER_AGE + 60)
        assert reap_orphan_shm(tmp_path) == ["repro-torn"]
        assert not path.exists()

    def test_foreign_names_never_touched(self, tmp_path, dead_pid):
        foreign = make_segment(tmp_path, "other-app-segment", dead_pid)
        age(foreign, SHM_UNKNOWN_OWNER_AGE + 60)
        assert reap_orphan_shm(tmp_path) == []
        assert foreign.exists()

    def test_missing_root_is_a_noop(self, tmp_path):
        assert reap_orphan_shm(tmp_path / "nope") == []


class TestFaultStateSweep:
    def _state_dir(self, root: Path, name: str, owner: int | None) -> Path:
        path = root / f"{STATE_DIR_PREFIX}{name}"
        path.mkdir()
        (path / "some-fault.fired").touch()
        if owner is not None:
            (path / STATE_PID_FILE).write_text(str(owner))
        return path

    def test_dead_owner_dir_is_reaped(self, tmp_path, dead_pid):
        path = self._state_dir(tmp_path, "x1", dead_pid)
        assert reap_orphan_fault_state(tmp_path) == [str(path)]
        assert not path.exists()

    def test_live_owner_dir_is_kept(self, tmp_path):
        path = self._state_dir(tmp_path, "x2", os.getpid())
        assert reap_orphan_fault_state(tmp_path) == []
        assert path.exists()

    def test_unstamped_dir_kept_until_old(self, tmp_path):
        path = self._state_dir(tmp_path, "x3", None)
        assert reap_orphan_fault_state(tmp_path) == []
        age(path, FAULT_STATE_UNKNOWN_OWNER_AGE + 60)
        assert reap_orphan_fault_state(tmp_path) == [str(path)]
        assert not path.exists()


@pytest.mark.skipif(not SHM_ROOT.is_dir(), reason="no /dev/shm on this OS")
class TestSigkillOrphanIntegration:
    def test_sigkilled_campaign_segment_is_reaped_at_next_start(self):
        token = f"reaptest{os.getpid()}"
        proc = subprocess.Popen(
            [sys.executable, str(CHILD), token],
            stdout=subprocess.PIPE,
            text=True,
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
            start_new_session=True,  # own group: the kill takes everything
        )
        try:
            line = proc.stdout.readline()
            assert line.startswith("SEGMENT "), line
            name = line.split(None, 1)[1].strip()
            segment = SHM_ROOT / name
            assert segment.exists()

            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
            proc.stdout.close()

            # SIGKILL ran no teardown: the segment is orphaned tmpfs.
            assert segment.exists()
            reaped = reap_orphan_shm()
            assert name in reaped
            assert not segment.exists()
        finally:
            if proc.poll() is None:
                os.killpg(proc.pid, signal.SIGKILL)
                proc.wait(timeout=30)
            (SHM_ROOT / f"repro-{token}-{'ab' * 8}").unlink(missing_ok=True)
