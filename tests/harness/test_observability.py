"""Engine observability: tracing integration and telemetry accounting.

Pins the guarantees the observability layer makes:

* **Accounting invariant** — ``computed + hit + replayed + failed ==
  total`` for every campaign shape, including journal-resume; replayed
  cells are never double-booked as misses or simulations.
* **Backoff exclusion** — a retried cell's ``wall_seconds`` is the time
  its attempts actually executed; retry backoff sleeps are excluded on
  both the serial and the parallel path, and the two agree.
* **Differential telemetry** — the same campaign at ``jobs=1`` and
  ``jobs=4`` (cold and warm cache) reports identical counters.
* **Span coverage** — with ``REPRO_TRACE`` set, the per-cell spans sum
  to within 5% of the engine's wall clock, and the trace renders
  through ``trace-summarize``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.harness.exec import ExecutionEngine, ResultCache, cell_key
from repro.harness.journal import RunJournal
from repro.harness.report import render_telemetry
from repro.obs.summarize import render_summary, summarize_trace
from repro.obs.trace import TRACE_ENV


class WorkCell:
    """A deterministic, journal/cache-able busy-work cell."""

    def __init__(self, ident: int, seconds: float = 0.02):
        self.ident = ident
        self.seconds = seconds

    @property
    def label(self) -> str:
        return f"work[{self.ident}]"

    def cache_token(self):
        return {"kind": "work", "ident": self.ident, "seconds": self.seconds}

    def execute(self):
        time.sleep(self.seconds)
        return self.ident * 10

    @staticmethod
    def cycles_of(value):
        return 100

    @staticmethod
    def encode(value):
        return {"v": value}

    @staticmethod
    def decode(payload):
        return payload["v"]


class FlakyCell(WorkCell):
    """Fails on the first attempt (per sentinel file), succeeds after.

    The sentinel lives on disk so the retry is observed consistently
    whether the attempts run in-process (serial) or on any mix of pool
    workers (parallel).
    """

    def __init__(self, ident: int, sentinel: str, seconds: float = 0.02):
        super().__init__(ident, seconds)
        self.sentinel = sentinel

    def cache_token(self):
        return {**super().cache_token(), "kind": "flaky", "s": self.sentinel}

    def execute(self):
        time.sleep(self.seconds)
        path = Path(self.sentinel)
        if not path.exists():
            path.write_text("attempted")
            raise RuntimeError("first attempt always fails")
        return super().execute()


def snapshot_counts(engine):
    """The order-independent, timing-independent part of the snapshot."""
    snap = engine.telemetry.snapshot()
    return {
        key: snap[key]
        for key in (
            "total",
            "computed",
            "hit",
            "replayed",
            "failed",
            "misses",
            "retries",
            "quarantined",
            "worker_crashes",
            "worker_timeouts",
        )
    }


def assert_invariant(engine):
    snap = engine.telemetry.snapshot()
    assert (
        snap["computed"] + snap["hit"] + snap["replayed"] + snap["failed"]
        == snap["total"]
    ), snap


class TestAccountingInvariant:
    def test_cold_warm_and_failed(self, tmp_path):
        cells = [WorkCell(i) for i in range(3)]
        cold = ExecutionEngine(jobs=1, cache=ResultCache(tmp_path))
        cold.run(cells)
        assert_invariant(cold)
        assert snapshot_counts(cold)["computed"] == 3

        warm = ExecutionEngine(jobs=1, cache=ResultCache(tmp_path))
        warm.run(cells)
        assert_invariant(warm)
        assert snapshot_counts(warm)["hit"] == 3
        assert snapshot_counts(warm)["misses"] == 0

    def test_replayed_cells_are_not_misses_or_simulations(self, tmp_path):
        """Satellite bugfix audit: resume must not double-book work a
        previous campaign already paid for."""
        cells = [WorkCell(i) for i in range(3)]
        journal = RunJournal(tmp_path / "journal.jsonl")
        first = ExecutionEngine(jobs=1, journal=journal)
        first.run(cells)
        journal.close()

        resumed = ExecutionEngine(
            jobs=1, journal=RunJournal(tmp_path / "journal.jsonl"), resume=True
        )
        resumed.run(cells)
        assert_invariant(resumed)
        snap = resumed.telemetry.snapshot()
        assert snap["replayed"] == 3
        assert snap["computed"] == 0
        assert snap["misses"] == 0
        assert resumed.telemetry.journal_replays == 3
        assert resumed.telemetry.simulations == 0
        assert resumed.telemetry.cache_misses == 0

    def test_rendered_totals_match_snapshot(self, tmp_path):
        """The printed telemetry block renders the same canonical
        counters the exporters publish."""
        cells = [WorkCell(i) for i in range(2)]
        journal = RunJournal(tmp_path / "journal.jsonl")
        ExecutionEngine(jobs=1, journal=journal).run(cells)
        journal.close()
        engine = ExecutionEngine(
            jobs=1,
            journal=RunJournal(tmp_path / "journal.jsonl"),
            resume=True,
        )
        engine.run(cells + [WorkCell(99)])
        assert_invariant(engine)
        snap = engine.telemetry.snapshot()
        text = render_telemetry(engine.telemetry)
        assert f"cells:        {snap['total']}" in text
        assert (
            f"{snap['replayed']} journal replays, {snap['hit']} cache hits, "
            f"{snap['computed']} simulated, {snap['failed']} failed"
        ) in text


class TestBackoffExcludedFromWallSeconds:
    """Satellite bugfix: serial retry backoff inflated wall_seconds."""

    BACKOFF = 2.0  # long enough that inclusion would be unmissable

    def run_flaky(self, tmp_path, jobs):
        tmp_path.mkdir(parents=True, exist_ok=True)
        sentinel = tmp_path / f"sentinel-{jobs}"
        cell = FlakyCell(jobs, str(sentinel), seconds=0.05)
        engine = ExecutionEngine(
            jobs=jobs, retries=1, backoff_base=self.BACKOFF
        )
        (outcome,) = engine.run([cell])
        assert outcome.status == "computed"
        assert outcome.attempts == 2
        assert engine.telemetry.retries == 1
        # The backoff was scheduled (and slept) but not booked as work.
        assert engine.telemetry.backoff_seconds >= self.BACKOFF * 0.5
        return outcome.wall_seconds

    def test_serial_excludes_backoff_sleep(self, tmp_path):
        wall = self.run_flaky(tmp_path, jobs=1)
        # Two ~0.05s attempts; anything near BACKOFF means the sleep
        # leaked back into the measurement.
        assert wall < 0.9

    def test_serial_and_parallel_agree(self, tmp_path):
        serial = self.run_flaky(tmp_path / "serial", jobs=1)
        parallel = self.run_flaky(tmp_path / "parallel", jobs=2)
        assert parallel < 0.9
        assert abs(serial - parallel) < 0.5


class TestDifferentialTelemetry:
    """Identical counters regardless of job count, cold and warm."""

    def campaign(self, tmp_path, jobs, tag):
        root = tmp_path / f"{tag}-{jobs}"
        root.mkdir()
        cells = [WorkCell(i) for i in range(3)]
        cells.append(FlakyCell(100, str(root / "sentinel"), seconds=0.01))
        cache = ResultCache(root / "cache")
        # Pre-plant one corrupt cache entry so a quarantine happens.
        corrupt_key = cell_key(cells[0])
        path = cache._path(corrupt_key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{torn json")
        engine = ExecutionEngine(
            jobs=jobs, cache=cache, retries=1, backoff_base=0.01
        )
        engine.run(cells)
        return engine, cells, cache

    def test_cold_and_warm_counters_match_across_job_counts(self, tmp_path):
        serial, cells_s, cache_s = self.campaign(tmp_path, 1, "cold")
        parallel, cells_p, cache_p = self.campaign(tmp_path, 4, "cold")
        expected = {
            "total": 4,
            "computed": 4,
            "hit": 0,
            "replayed": 0,
            "failed": 0,
            "misses": 4,
            "retries": 1,
            "quarantined": 1,
            "worker_crashes": 0,
            "worker_timeouts": 0,
        }
        assert snapshot_counts(serial) == expected
        assert snapshot_counts(parallel) == expected
        assert_invariant(serial)
        assert_invariant(parallel)

        warm_serial = ExecutionEngine(jobs=1, cache=cache_s)
        warm_serial.run(cells_s)
        warm_parallel = ExecutionEngine(jobs=4, cache=cache_p)
        warm_parallel.run(cells_p)
        warm_expected = {
            "total": 4,
            "computed": 0,
            "hit": 4,
            "replayed": 0,
            "failed": 0,
            "misses": 0,
            "retries": 0,
            "quarantined": 0,
            "worker_crashes": 0,
            "worker_timeouts": 0,
        }
        assert snapshot_counts(warm_serial) == warm_expected
        assert snapshot_counts(warm_parallel) == warm_expected


class TestTraceCoverage:
    """Acceptance: spans account for the engine's wall clock."""

    def read_spans(self, path):
        spans = []
        for line in path.read_text().splitlines():
            record = json.loads(line)
            if record["kind"] == "span":
                spans.append(record)
        return spans

    def test_cell_spans_sum_to_engine_wall_clock(self, monkeypatch, tmp_path):
        sink = tmp_path / "trace.jsonl"
        monkeypatch.setenv(TRACE_ENV, str(sink))
        cells = [WorkCell(i, seconds=0.25) for i in range(2)]
        engine = ExecutionEngine(jobs=1)  # no journal: no fsync stalls
        engine.run(cells)
        spans = self.read_spans(sink)
        cell_time = sum(
            s["dur"] for s in spans if s["name"].startswith("cell.")
        )
        wall = engine.telemetry.wall_seconds
        assert cell_time == pytest.approx(wall, rel=0.05)
        (run_span,) = [s for s in spans if s["name"] == "engine.run"]
        assert run_span["attrs"]["cells"] == 2
        assert run_span["attrs"]["computed"] == 2
        assert run_span["attrs"]["interrupted"] is False

    def test_hit_and_retry_instrumentation(self, monkeypatch, tmp_path):
        sink = tmp_path / "trace.jsonl"
        monkeypatch.setenv(TRACE_ENV, str(sink))
        cache = ResultCache(tmp_path / "cache")
        flaky = FlakyCell(7, str(tmp_path / "sentinel"), seconds=0.01)
        ExecutionEngine(
            jobs=1, cache=cache, retries=1, backoff_base=0.01
        ).run([flaky])
        ExecutionEngine(jobs=1, cache=cache).run([flaky])
        names = [
            json.loads(line)["name"]
            for line in sink.read_text().splitlines()
        ]
        assert "cell.retry" in names  # the failed first attempt
        assert "cell.compute" in names
        assert "cell.hit" in names  # the second campaign's warm lookup

    def test_trace_summarize_renders_engine_trace(
        self, monkeypatch, tmp_path
    ):
        sink = tmp_path / "trace.jsonl"
        monkeypatch.setenv(TRACE_ENV, str(sink))
        ExecutionEngine(jobs=1).run([WorkCell(1)])
        text = render_summary(summarize_trace(sink))
        assert "engine.run" in text
        assert "cell.compute" in text


class TestSimulatorSpans:
    def test_sim_run_span_carries_scheme_and_counters(
        self, monkeypatch, tmp_path
    ):
        from repro.harness.experiment import run_mix_scheme
        from repro.harness.runconfig import TEST

        sink = tmp_path / "trace.jsonl"
        monkeypatch.setenv(TRACE_ENV, str(sink))
        run_mix_scheme([("gcc_2", "AES-128")], "untangle", TEST)
        spans = [
            json.loads(line)
            for line in sink.read_text().splitlines()
            if json.loads(line)["kind"] == "span"
        ]
        (sim,) = [s for s in spans if s["name"] == "sim.run"]
        attrs = sim["attrs"]
        assert attrs["scheme"] == "untangle"
        assert attrs["kernel"] in ("batched", "reference")
        assert attrs["completed"] is True
        assert attrs["quanta"] > 0
        assert attrs["resizes"] >= 0
        # Untangle builds UMON monitors; they observed real accesses.
        assert attrs["monitor_observed"] > 0
        assert attrs["monitor_sampled"] > 0
