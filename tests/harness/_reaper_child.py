"""Child process for the orphan-reaper integration test.

Creates one shared-memory store segment, reports its name on stdout,
then idles until the parent SIGKILLs its whole process group. Killing
the group takes Python's resource-tracker helper down too — the same
way an OOM kill or ``kill -9`` of a session leader does — so nothing
gets a chance to unlink the segment and it is genuinely orphaned.
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.harness.store import _ShmBackend


def main() -> int:
    token = sys.argv[1]
    backend = _ShmBackend(token, owner=True)
    digest = "ab" * 32
    backend.store(
        digest,
        {"kind": "reaper-test"},
        {"x": np.arange(64, dtype=np.int64)},
    )
    print("SEGMENT " + backend._name(digest), flush=True)
    time.sleep(120)  # parent kills us long before this
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
