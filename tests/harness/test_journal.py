"""Tests for the crash-safe campaign journal and journal-backed resume.

The guarantee the fault-tolerant runner depends on: any cell the engine
*reported finished* is durably journaled, and a resumed run replays it
bit-identically with zero re-simulation — even when the cache is
disabled, the journal tail is torn by a crash, or a previous attempt
failed.
"""

from __future__ import annotations

import json

import pytest

from repro.harness.exec import ExecutionEngine, ResultCache, cell_key
from repro.harness.experiment import run_mix_scheme
from repro.harness.journal import (
    JOURNAL_FORMAT_VERSION,
    JournalEntry,
    RunJournal,
)
from repro.harness.runconfig import TEST

from tests.harness.test_exec import PAIRS, SCHEMES, SleepCell, make_cells


def entry(key="k1", status="computed", value={"seconds": 1}, **kw):
    defaults = dict(
        key=key,
        label=f"cell-{key}",
        status=status,
        wall_seconds=0.5,
        attempts=1,
        value=value,
    )
    defaults.update(kw)
    return JournalEntry(**defaults)


class TestRunJournal:
    def test_round_trip(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl")
        journal.record(entry("k1", campaign="smoke"))
        journal.record(entry("k2", status="failed", value=None, error="boom"))
        loaded = RunJournal(tmp_path / "j.jsonl").load()
        assert set(loaded) == {"k1", "k2"}
        assert loaded["k1"].ok and loaded["k1"].value == {"seconds": 1}
        assert loaded["k1"].campaign == "smoke"
        assert not loaded["k2"].ok and loaded["k2"].error == "boom"

    def test_missing_file_is_empty(self, tmp_path):
        assert RunJournal(tmp_path / "absent.jsonl").load() == {}

    def test_last_entry_wins(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl")
        journal.record(entry("k1", status="failed", value=None, error="boom"))
        journal.record(entry("k1", status="computed"))
        loaded = journal.load()
        assert loaded["k1"].ok

    def test_torn_final_line_is_tolerated(self, tmp_path):
        """A crash mid-append damages only the last line; the rest loads."""
        path = tmp_path / "j.jsonl"
        journal = RunJournal(path)
        journal.record(entry("k1"))
        journal.record(entry("k2"))
        journal.close()
        lines = path.read_text().splitlines()
        lines[-1] = lines[-1][: len(lines[-1]) // 2]  # SIGKILL mid-write of k2
        path.write_text("\n".join(lines))
        fresh = RunJournal(path)
        loaded = fresh.load()
        assert set(loaded) == {"k1"}
        assert fresh.corrupt_lines == 1

    def test_bitflip_detected_by_checksum(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = RunJournal(path)
        journal.record(entry("k1", wall_seconds=1.0))
        journal.close()
        lines = path.read_text().splitlines()
        lines[-1] = lines[-1].replace('"wall_seconds":1.0', '"wall_seconds":9.0')
        path.write_text("\n".join(lines) + "\n")
        fresh = RunJournal(path)
        assert fresh.load() == {}
        assert fresh.corrupt_lines == 1

    def test_format_version_mismatch_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = RunJournal(path)
        journal.record(entry("k1"))
        journal.close()
        text = path.read_text().replace(
            f'"format":{JOURNAL_FORMAT_VERSION}', '"format":-1'
        )
        path.write_text(text)
        assert RunJournal(path).load() == {}

    def test_appends_are_one_json_line_each(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = RunJournal(path)
        journal.record(entry("k1"))
        journal.record(entry("k2"))
        lines = [l for l in path.read_text().splitlines() if l.strip()]
        assert len(lines) == 3  # header + two records
        assert json.loads(lines[0])["kind"] == "header"
        assert all(json.loads(l)["kind"] == "cell" for l in lines[1:])


class TestGroupCommit:
    """Group-commit batching: fewer fsyncs, unchanged durability story."""

    def test_default_is_synchronous(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl")
        seq = journal.record(entry("k1"))
        # batch_entries=1: durable before record() returns.
        assert journal.durable_seq == seq == 1
        assert journal.flushes == 1

    def test_batched_records_buffer_until_batch_fills(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = RunJournal(path, batch_entries=3)
        s1 = journal.record(entry("k1"))
        s2 = journal.record(entry("k2"))
        # Buffered in user space: not yet durable, not yet on disk.
        assert journal.durable_seq == 0
        assert len(path.read_text().splitlines()) == 1  # header only
        s3 = journal.record(entry("k3"))
        assert journal.durable_seq == s3 == 3
        assert journal.flushes == 1  # one fsync for all three
        loaded = RunJournal(path).load()
        assert set(loaded) == {"k1", "k2", "k3"}
        assert (s1, s2, s3) == (1, 2, 3)

    def test_flush_commits_a_partial_batch(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = RunJournal(path, batch_entries=64)
        journal.record(entry("k1"))
        assert journal.durable_seq == 0
        journal.flush()
        assert journal.durable_seq == 1
        assert RunJournal(path).load()["k1"].ok

    def test_close_flushes_buffered_entries(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path, batch_entries=64) as journal:
            journal.record(entry("k1"))
        assert set(RunJournal(path).load()) == {"k1"}

    def test_linger_flushes_a_stalled_partial_batch(self, tmp_path):
        import time

        journal = RunJournal(
            tmp_path / "j.jsonl", batch_entries=64, linger_seconds=0.05
        )
        journal.record(entry("k1"))
        deadline = time.monotonic() + 2.0
        while journal.durable_seq < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert journal.durable_seq == 1
        journal.close()

    def test_batched_lines_identical_to_synchronous(self, tmp_path):
        """Group commit changes *when* bytes hit the disk, not the bytes."""
        sync_path, batch_path = tmp_path / "sync.jsonl", tmp_path / "batch.jsonl"
        sync = RunJournal(sync_path)
        batched = RunJournal(batch_path, batch_entries=8)
        for journal in (sync, batched):
            journal.record(entry("k1", campaign="same"))
            journal.record(entry("k2", status="failed", value=None, error="x"))
            journal.close()
        assert sync_path.read_text() == batch_path.read_text()

    def test_batching_from_env_defaults_and_overrides(self, monkeypatch):
        from repro.errors import ConfigurationError
        from repro.harness.journal import (
            DEFAULT_BATCH_ENTRIES,
            DEFAULT_LINGER_SECONDS,
            batching_from_env,
        )

        monkeypatch.delenv("REPRO_JOURNAL_BATCH", raising=False)
        monkeypatch.delenv("REPRO_JOURNAL_LINGER", raising=False)
        assert batching_from_env() == (
            DEFAULT_BATCH_ENTRIES,
            DEFAULT_LINGER_SECONDS,
        )
        monkeypatch.setenv("REPRO_JOURNAL_BATCH", "8")
        monkeypatch.setenv("REPRO_JOURNAL_LINGER", "0.2")
        assert batching_from_env() == (8, 0.2)
        monkeypatch.setenv("REPRO_JOURNAL_BATCH", "zero")
        with pytest.raises(ConfigurationError):
            batching_from_env()
        monkeypatch.setenv("REPRO_JOURNAL_BATCH", "0")
        with pytest.raises(ConfigurationError):
            batching_from_env()

    def test_engine_acks_only_after_fsync(self, tmp_path):
        """Progress lines lag the fsync, never lead it: every acked cell
        is durable even while later cells sit in the buffer."""
        journal = RunJournal(
            tmp_path / "j.jsonl", batch_entries=2, linger_seconds=3600
        )
        acked: list[str] = []
        durable_at_ack: list[int] = []

        def progress(line: str) -> None:
            acked.append(line)
            durable_at_ack.append(journal.durable_seq)

        engine = ExecutionEngine(
            jobs=1, journal=journal, progress=progress
        )
        engine.run([SleepCell(0.01), SleepCell(0.02), SleepCell(0.03)])
        assert len(acked) == 3
        # Ack i is emitted only once its own record is durable.
        assert all(durable >= i + 1 for i, durable in enumerate(durable_at_ack))
        # The odd tail cell was committed by the teardown flush.
        assert journal.durable_seq == 3
        assert len(RunJournal(tmp_path / "j.jsonl").load()) == 3


class TestEngineJournaling:
    def test_every_finished_cell_is_journaled(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl")
        engine = ExecutionEngine(jobs=1, journal=journal)
        cells = [SleepCell(0.01), SleepCell(0.02)]
        engine.run(cells, campaign="unit")
        loaded = journal.load()
        assert len(loaded) == 2
        assert all(e.status == "computed" for e in loaded.values())
        assert all(e.campaign == "unit" for e in loaded.values())

    def test_resume_replays_without_resimulating(self, tmp_path):
        """Journal-only resume: zero simulations, no cache needed."""
        cells = [SleepCell(0.01), SleepCell(0.02)]
        first = ExecutionEngine(jobs=1, journal=RunJournal(tmp_path / "j.jsonl"))
        baseline = first.run(cells)
        resumed = ExecutionEngine(
            jobs=1, journal=RunJournal(tmp_path / "j.jsonl"), resume=True
        )
        outcomes = resumed.run(cells)
        assert resumed.telemetry.simulations == 0
        assert resumed.telemetry.journal_replays == len(cells)
        assert [o.status for o in outcomes] == ["replayed", "replayed"]
        assert [o.value for o in outcomes] == [o.value for o in baseline]

    def test_resume_replay_is_bit_identical_for_mix_cells(self, tmp_path):
        direct = run_mix_scheme(list(PAIRS), "static", TEST)
        cells = make_cells(schemes=("static",))
        ExecutionEngine(jobs=1, journal=RunJournal(tmp_path / "j.jsonl")).run(
            cells
        )
        resumed = ExecutionEngine(
            jobs=1, journal=RunJournal(tmp_path / "j.jsonl"), resume=True
        )
        outcomes = resumed.run(cells)
        assert resumed.telemetry.simulations == 0
        # The JSON round-trip is exact: floats compare equal bit-wise.
        assert outcomes[0].value == direct

    def test_failed_cells_rerun_on_resume(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl")
        journal.record(
            JournalEntry(
                key=cell_key(SleepCell(0.01)),
                label="sleep[0.01]",
                status="failed",
                wall_seconds=0.1,
                attempts=2,
                value=None,
                error="boom",
            )
        )
        engine = ExecutionEngine(
            jobs=1, journal=RunJournal(tmp_path / "j.jsonl"), resume=True
        )
        outcomes = engine.run([SleepCell(0.01)])
        assert outcomes[0].status == "computed"
        assert engine.telemetry.simulations == 1
        # The journal now remembers the success, not the failure.
        assert RunJournal(tmp_path / "j.jsonl").load()[outcomes[0].key].ok

    def test_unknown_cells_run_normally_under_resume(self, tmp_path):
        engine = ExecutionEngine(
            jobs=1, journal=RunJournal(tmp_path / "j.jsonl"), resume=True
        )
        outcomes = engine.run([SleepCell(0.01)])
        assert outcomes[0].status == "computed"

    def test_resume_with_parallel_engine(self, tmp_path):
        cells = [SleepCell(0.01), SleepCell(0.02), SleepCell(0.03)]
        ExecutionEngine(jobs=2, journal=RunJournal(tmp_path / "j.jsonl")).run(
            cells
        )
        resumed = ExecutionEngine(
            jobs=2, journal=RunJournal(tmp_path / "j.jsonl"), resume=True
        )
        outcomes = resumed.run(cells)
        assert resumed.telemetry.simulations == 0
        assert [o.value for o in outcomes] == [0.01, 0.02, 0.03]

    def test_partial_journal_resumes_only_missing_cells(self, tmp_path):
        """The crash-recovery contract: journaled cells replay, the rest
        (including a torn final line) re-run."""
        path = tmp_path / "j.jsonl"
        cells = [SleepCell(0.01), SleepCell(0.02), SleepCell(0.03)]
        ExecutionEngine(jobs=1, journal=RunJournal(path)).run(cells)
        # Simulate a SIGKILL mid-append: drop the last record's tail.
        lines = path.read_text().splitlines()
        lines[-1] = lines[-1][: len(lines[-1]) // 2]
        path.write_text("\n".join(lines) + "\n")
        resumed = ExecutionEngine(jobs=1, journal=RunJournal(path), resume=True)
        outcomes = resumed.run(cells)
        assert resumed.telemetry.journal_replays == 2
        assert resumed.telemetry.simulations == 1
        assert [o.value for o in outcomes] == [0.01, 0.02, 0.03]

    def test_cache_hits_are_journaled_for_future_resume(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        ExecutionEngine(jobs=1, cache=cache).run([SleepCell(0.01)])
        journal = RunJournal(tmp_path / "j.jsonl")
        engine = ExecutionEngine(jobs=1, cache=cache, journal=journal)
        outcomes = engine.run([SleepCell(0.01)])
        assert outcomes[0].status == "hit"
        loaded = journal.load()
        assert loaded[outcomes[0].key].status == "hit"
        assert loaded[outcomes[0].key].ok

    def test_journal_precedence_over_cache_still_bit_identical(self, tmp_path):
        """Resume prefers the journal; values agree with the cache path."""
        cache = ResultCache(tmp_path / "cache")
        journal_path = tmp_path / "j.jsonl"
        cells = make_cells(schemes=SCHEMES)
        ExecutionEngine(jobs=1, cache=cache, journal=RunJournal(journal_path)).run(
            cells
        )
        via_journal = ExecutionEngine(
            jobs=1, journal=RunJournal(journal_path), resume=True
        ).run(cells)
        via_cache = ExecutionEngine(jobs=1, cache=ResultCache(tmp_path / "cache")).run(
            cells
        )
        assert [o.value for o in via_journal] == [o.value for o in via_cache]
