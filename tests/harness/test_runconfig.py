"""Tests for run profiles and the architecture configuration."""

import pytest

from repro.config import ArchConfig
from repro.errors import ConfigurationError
from repro.harness.runconfig import LARGE, PROFILES, SCALED, TEST, RunProfile
from repro.workloads.workload import WorkloadScale


class TestArchConfig:
    def test_scaled_defaults_match_paper_shape(self):
        arch = ArchConfig.scaled()
        assert arch.num_cores == 8
        assert len(arch.supported_partition_lines) == 9
        assert arch.llc_lines == 2048
        assert arch.default_partition_lines == 256  # the 2 MB analog

    def test_paper_config_is_128x_scaled(self):
        paper = ArchConfig.paper()
        scaled = ArchConfig.scaled()
        assert paper.llc_lines == 128 * scaled.llc_lines
        for p, s in zip(
            paper.supported_partition_lines, scaled.supported_partition_lines
        ):
            assert p == 128 * s

    def test_partition_size_labels(self):
        arch = ArchConfig.scaled()
        assert arch.partition_size_labels == [
            "128kB", "256kB", "512kB", "1MB", "2MB", "3MB", "4MB", "6MB", "8MB",
        ]

    def test_unit_conversions_roundtrip(self):
        arch = ArchConfig.scaled()
        assert arch.lines_to_paper_mb(256) == pytest.approx(2.0)
        assert arch.paper_mb_to_lines(2.0) == 256

    def test_validation_default_in_alphabet(self):
        with pytest.raises(ConfigurationError):
            ArchConfig(default_partition_lines=100)

    def test_validation_partition_below_set(self):
        with pytest.raises(ConfigurationError):
            ArchConfig(supported_partition_lines=(8, 1024), default_partition_lines=1024)

    def test_with_cores(self):
        assert ArchConfig.scaled().with_cores(4).num_cores == 4


class TestProfiles:
    def test_registry(self):
        assert PROFILES["scaled"] is SCALED
        assert PROFILES["test"] is TEST
        assert PROFILES["large"] is LARGE

    def test_scaled_time_units_consistent(self):
        """The 'one ms' quantities agree (interval = cooldown = 1 ms)."""
        assert SCALED.time_interval == SCALED.cycles_per_ms
        assert SCALED.cooldown == SCALED.cycles_per_ms

    def test_with_seed(self):
        assert SCALED.with_seed(7).seed == 7
        assert SCALED.with_seed(7).name == SCALED.name

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RunProfile(name="bad", workload_scale=WorkloadScale(), quantum=0)

    def test_arch_factory(self):
        assert SCALED.arch(4).num_cores == 4
