"""Tests for replacement policies."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    make_policy,
)


def test_lru_victim_is_front():
    assert LRUPolicy().victim_index([1, 2, 3]) == 0


def test_lru_hit_moves_to_back():
    ways = [1, 2, 3]
    LRUPolicy().on_hit(ways, 0)
    assert ways == [2, 3, 1]


def test_fifo_victim_is_front_and_hits_noop():
    ways = [1, 2, 3]
    policy = FIFOPolicy()
    assert policy.victim_index(ways) == 0
    policy.on_hit(ways, 1)
    assert ways == [1, 2, 3]


def test_random_policy_deterministic_with_seed():
    a = RandomPolicy(seed=1)
    b = RandomPolicy(seed=1)
    ways = [1, 2, 3, 4]
    assert [a.victim_index(ways) for _ in range(10)] == [
        b.victim_index(ways) for _ in range(10)
    ]


def test_random_victim_in_range():
    policy = RandomPolicy(seed=0)
    for _ in range(20):
        assert 0 <= policy.victim_index([1, 2, 3]) < 3


def test_make_policy():
    assert make_policy("lru").name == "lru"
    assert make_policy("fifo").name == "fifo"
    assert make_policy("random", seed=2).name == "random"


def test_make_policy_unknown():
    with pytest.raises(ConfigurationError):
        make_policy("plru")
