"""Tests for the SMT pipeline-partitioning substrate (Section 6.3)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.smt import (
    MixFractionMetric,
    SMTPipeline,
    SMTWorkload,
    synthetic_smt_workload,
)


class TestWorkloads:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SMTWorkload("bad", np.array([]))
        with pytest.raises(ConfigurationError):
            SMTWorkload("bad", np.array([-1]))

    def test_unit_fraction(self):
        workload = SMTWorkload("w", np.array([0, 1, 2, 0]))
        assert workload.unit_fraction() == pytest.approx(0.5)

    def test_synthetic_deterministic(self):
        a = synthetic_smt_workload("a", 500, 0.4, seed=3)
        b = synthetic_smt_workload("a", 500, 0.4, seed=3)
        assert np.array_equal(a.unit_demand, b.unit_demand)

    def test_synthetic_fraction_respected(self):
        workload = synthetic_smt_workload("w", 5_000, 0.3, seed=1)
        assert workload.unit_fraction() == pytest.approx(0.3, abs=0.05)

    def test_burstiness_clusters_usage(self):
        smooth = synthetic_smt_workload("s", 4_000, 0.5, burstiness=1, seed=2)
        bursty = synthetic_smt_workload("b", 4_000, 0.5, burstiness=20, seed=2)
        def run_lengths(demand):
            transitions = int(np.sum(demand[1:] != demand[:-1]))
            return transitions
        assert run_lengths(bursty.unit_demand) < run_lengths(smooth.unit_demand)

    def test_synthetic_validation(self):
        with pytest.raises(ConfigurationError):
            synthetic_smt_workload("w", 10, 1.5)
        with pytest.raises(ConfigurationError):
            synthetic_smt_workload("w", 10, 0.5, burstiness=0)


class TestPipeline:
    def test_quota_management(self):
        pipeline = SMTPipeline(total_slots=8)
        assert pipeline.quota_of(0) == 4
        pipeline.set_quota(1, 2)  # shrink first: capacity is invariant
        pipeline.set_quota(0, 6)
        assert pipeline.quota_of(0) == 6
        with pytest.raises(SimulationError):
            pipeline.set_quota(1, 3)  # 6 + 3 > 8
        with pytest.raises(ConfigurationError):
            pipeline.set_quota(1, 0)

    def test_construction_validation(self):
        with pytest.raises(ConfigurationError):
            SMTPipeline(total_slots=1, num_threads=2)
        with pytest.raises(ConfigurationError):
            SMTPipeline(total_slots=8, issue_width=0)

    def test_both_threads_finish(self):
        pipeline = SMTPipeline(total_slots=8)
        workloads = [
            synthetic_smt_workload("a", 1_000, 0.3, seed=1),
            synthetic_smt_workload("b", 1_000, 0.3, seed=2),
        ]
        stats = pipeline.run(workloads)
        assert all(s.retired == 1_000 for s in stats)
        assert all(s.ipc > 0 for s in stats)

    def test_bigger_partition_means_higher_ipc(self):
        """The essential coupling: throughput responds to partition size."""
        def run_with_quota(quota):
            pipeline = SMTPipeline(total_slots=8)
            pipeline.set_quota(1, 1)
            pipeline.set_quota(0, quota)
            workloads = [
                synthetic_smt_workload("hungry", 2_000, 0.9, seed=1),
                synthetic_smt_workload("light", 2_000, 0.05, seed=2),
            ]
            return pipeline.run(workloads)[0].ipc

        assert run_with_quota(6) > run_with_quota(2)

    def test_full_events_counted_under_pressure(self):
        pipeline = SMTPipeline(total_slots=4, issue_width=4)
        pipeline.set_quota(0, 1)
        pipeline.set_quota(1, 3)
        workloads = [
            synthetic_smt_workload("hungry", 1_000, 0.9, seed=1),
            synthetic_smt_workload("light", 1_000, 0.1, seed=2),
        ]
        stats = pipeline.run(workloads)
        assert stats[0].full_events > stats[1].full_events

    def test_workload_count_checked(self):
        pipeline = SMTPipeline(total_slots=8)
        with pytest.raises(ConfigurationError):
            pipeline.run([synthetic_smt_workload("only", 10, 0.5)])

    def test_on_cycle_hook_can_resize(self):
        pipeline = SMTPipeline(total_slots=8)
        resized_at = []

        def hook(cycle, pipe):
            if cycle == 50:
                pipe.set_quota(1, 2)
                pipe.set_quota(0, 6)
                resized_at.append(cycle)

        workloads = [
            synthetic_smt_workload("a", 2_000, 0.8, seed=1),
            synthetic_smt_workload("b", 2_000, 0.1, seed=2),
        ]
        pipeline.run(workloads, on_cycle=hook)
        assert resized_at == [50]
        assert pipeline.quota_of(0) == 6


class TestMixFractionMetric:
    def test_declared_timing_independent(self):
        assert MixFractionMetric().timing_independent

    def test_fraction_over_window(self):
        metric = MixFractionMetric(window=4)
        for demand in [1, 0, 1, 1]:
            metric.observe(demand)
        assert metric.fraction == pytest.approx(0.75)

    def test_window_slides(self):
        metric = MixFractionMetric(window=2)
        for demand in [1, 1, 0, 0]:
            metric.observe(demand)
        assert metric.fraction == 0.0

    def test_recommended_slots(self):
        metric = MixFractionMetric(window=10)
        for demand in [1] * 9 + [0]:
            metric.observe(demand)
        assert metric.recommended_slots(issue_width=4) == 4

    def test_minimum_one_slot(self):
        metric = MixFractionMetric()
        assert metric.recommended_slots(4) == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MixFractionMetric(window=0)
