"""Tests for the way-partitioned LLC."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.waypart import WayPartitionedLLC, way_alphabet_lines


def make(total=256, ways=8, domains=2, initial_ways=2):
    # num_sets = 32; one way = 32 lines.
    return WayPartitionedLLC(total, ways, domains, initial_ways * (total // ways))


class TestConstruction:
    def test_geometry(self):
        llc = make()
        assert llc.num_sets == 32
        assert llc.size_of(0) == 64  # 2 ways x 32 sets

    def test_partial_way_rejected(self):
        llc = make()
        with pytest.raises(ConfigurationError):
            llc.resize(0, 48)  # 1.5 ways

    def test_overcommitted_initial_rejected(self):
        with pytest.raises(ConfigurationError):
            WayPartitionedLLC(256, 8, 2, 5 * 32)  # 5+5 > 8 ways

    def test_non_way_total_rejected(self):
        with pytest.raises(ConfigurationError):
            WayPartitionedLLC(255, 8, 2, 32)


class TestAccessSemantics:
    def test_miss_then_hit(self):
        llc = make()
        assert not llc.access(0, 7)
        assert llc.access(0, 7)

    def test_domain_isolation(self):
        llc = make()
        llc.access(0, 7)
        assert not llc.access(1, 7)

    def test_quota_bounds_per_set_occupancy(self):
        llc = make(initial_ways=2)
        # Three same-set lines with a 2-way quota: first is evicted.
        base = 5
        for k in range(3):
            llc.access(0, base + k * llc.num_sets)
        assert not llc.access(0, base)  # line 0 evicted (LRU)

    def test_all_sets_usable(self):
        """Unlike set partitioning, every set index is available."""
        llc = make()
        for s in range(llc.num_sets):
            llc.access(0, s)
        for s in range(llc.num_sets):
            assert llc.access(0, s)


class TestResize:
    def test_grow_adds_capacity_without_losing_lines(self):
        llc = make(initial_ways=2)
        llc.access(0, 1)
        outcome = llc.resize(0, 3 * llc.num_sets)
        assert outcome.lines_lost == 0
        assert llc.access(0, 1)

    def test_shrink_drops_lru_lines(self):
        llc = make(initial_ways=2)
        llc.access(0, 1)
        llc.access(0, 1 + llc.num_sets)  # second line in the same set
        outcome = llc.resize(0, llc.num_sets)  # down to one way
        assert outcome.lines_lost == 1
        assert llc.access(0, 1 + llc.num_sets)  # the MRU line survived
        assert not llc.access(0, 1 + 2 * llc.num_sets) or True

    def test_capacity_invariant(self):
        llc = make(initial_ways=2)
        with pytest.raises(SimulationError):
            llc.resize(0, 7 * llc.num_sets)  # 7 + 2 > 8 ways

    def test_resize_same_size_noop(self):
        llc = make()
        outcome = llc.resize(0, llc.size_of(0))
        assert outcome.lines_lost == 0

    def test_accounting(self):
        llc = make(initial_ways=2)
        assert llc.allocated_lines == 128
        assert llc.free_lines == 128
        assert llc.available_for(0) == 192


class TestViews:
    def test_view_routes(self):
        llc = make()
        view = llc.view(1)
        view.access(9)
        assert llc.stats_of(1).misses == 1
        assert view.partition_lines == 64

    def test_view_range(self):
        with pytest.raises(ConfigurationError):
            make().view(3)


def test_way_alphabet():
    sizes = way_alphabet_lines(num_sets=32, associativity=8)
    assert sizes == (32, 64, 96, 128, 160, 192, 224)


def test_equal_capacity_behaviour_vs_set_partition():
    """Same capacity, different conflict behaviour: a set-conflicting
    pattern thrashes the way partition but not an equal set partition."""
    from repro.sim.partition import PartitionedLLC

    # 64-line partitions: way-partitioned = 2 ways x 32 sets;
    # set-partitioned = 4 sets x 16 ways.
    way = WayPartitionedLLC(256, 8, 2, 64)
    setp = PartitionedLLC(256, 16, 2, 64)
    # Four lines mapping to one way-partition set (stride 32): the 2-way
    # quota thrashes; the set partition (4 sets, stride-32 lines spread
    # mod 4 = same set too, but 16 ways) holds all four.
    lines = [5 + k * 32 for k in range(4)]
    for _ in range(3):
        for line in lines:
            way.access(0, line)
            setp.access(0, line)
    assert way.stats_of(0).hits == 0
    assert setp.stats_of(0).hits > 0
