"""Differential tests: the stacked-lanes driver vs sequential execution.

:class:`~repro.sim.batch.StackedLanes` claims lane-level *bit identity*
with the sequential batched kernel: interleaving K cells' kernel
generators and servicing each round of their cumsum requests with one
2-D ``np.cumsum(slab, axis=1)`` must produce, for every lane, exactly
the result :func:`~repro.sim.batch.drive_kernel` produces for that
lane alone. These tests pin the contract at three levels:

* toy kernel generators (exact float equality, divergence counting,
  early finish, per-lane exception isolation, slab growth mid-run);
* full system runs — every scheme's mix cell stacked against its own
  sequential run, including lanes that diverge mid-chunk on resizing
  assessments and lanes that finish early;
* the shared scratch arena reused across chunk boundaries (the
  allocation-sharing layer under the stacked driver) against fresh
  per-cell allocation.
"""

from __future__ import annotations

from contextlib import ExitStack

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ArchConfig
from repro.harness.exec import MixSchemeCell
from repro.harness.experiment import (
    SCHEME_NAMES,
    prepare_mix_scheme,
    run_mix_scheme,
    run_mix_schemes_stacked,
)
from repro.harness.runconfig import TEST
from repro.sim.batch import StackedLanes, cell_scratch, drive_kernel
from repro.sim.hierarchy import DomainMemory
from repro.sim.partition import PartitionedLLC

PAIRS = [("gcc_2", "AES-128"), ("imagick_0", "SHA-256")]


# ----------------------------------------------------------------------
# Toy kernel generators: the protocol in isolation
# ----------------------------------------------------------------------
def _toy_lane(blocks, markers_at=(), fail_at=None):
    """A kernel generator summing cumsum tops over ``blocks``.

    Mirrors the real kernel's shape: optional divergence markers
    between requests, a scalar tail after the last request, and a
    meaningful return value built *from the replies* — so any reply
    corruption (wrong row, stale view, wrong width) changes the result.
    """

    def gen():
        total = 0.0
        for i, block in enumerate(blocks):
            if fail_at is not None and i == fail_at:
                raise RuntimeError(f"lane failed at block {i}")
            if i in markers_at:
                yield ("diverge", "assessment", 0)
            deltas = np.asarray(block, dtype=np.float64)
            out = np.empty_like(deltas)
            cum = yield ("cumsum", deltas, out)
            total += float(cum[-1]) + float(cum[0])
        return total

    return gen()


_BLOCK = st.lists(
    st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
    min_size=1,
    max_size=30,
)
_LANE = st.lists(_BLOCK, min_size=1, max_size=8)


class TestStackedLanesUnit:
    @settings(max_examples=60, deadline=None)
    @given(lanes=st.lists(_LANE, min_size=1, max_size=6))
    def test_bit_identical_to_sequential_drive(self, lanes):
        sequential = [drive_kernel(_toy_lane(blocks)) for blocks in lanes]
        stacked = StackedLanes([_toy_lane(blocks) for blocks in lanes]).run()
        assert stacked.results == sequential  # exact float equality

    def test_rowwise_cumsum_matches_per_row(self):
        """The vectorization claim itself: axis-1 cumsum == per-row 1-D."""
        rng = np.random.default_rng(3)
        slab = rng.standard_normal((8, 257))
        stacked = np.cumsum(slab, axis=1)
        for row in range(slab.shape[0]):
            assert np.array_equal(stacked[row], np.cumsum(slab[row]))

    def test_divergence_markers_and_early_finish_counted(self):
        # Lane 0: 3 blocks, one marker. Lane 1: 1 block (finishes while
        # lane 0 still runs: one "finish" divergence). Lane 2: 3 blocks,
        # finishes last alongside lane 0 — whichever of the two remains
        # alone does not count its own finish.
        lanes = [
            _toy_lane([[1.0], [2.0], [3.0]], markers_at=(1,)),
            _toy_lane([[4.0]]),
            _toy_lane([[5.0], [6.0], [7.0]]),
        ]
        stacked = StackedLanes(lanes).run()
        # 1 marker + lane 1's early finish + the second-to-last finisher.
        assert stacked.divergences == 3

    def test_lane_exception_is_isolated(self):
        lanes = [
            _toy_lane([[1.0, 2.0], [3.0]]),
            _toy_lane([[4.0], [5.0]], fail_at=1),
            _toy_lane([[6.0], [7.0], [8.0]]),
        ]
        expected = [
            drive_kernel(_toy_lane([[1.0, 2.0], [3.0]])),
            None,
            drive_kernel(_toy_lane([[6.0], [7.0], [8.0]])),
        ]
        stacked = StackedLanes(lanes).run()
        assert isinstance(stacked.results[1], RuntimeError)
        assert stacked.results[0] == expected[0]
        assert stacked.results[2] == expected[2]

    def test_slab_growth_mid_run_preserves_results(self):
        """Widths that jump force a slab reallocation between rounds."""
        lanes = [
            [[1.0] * 2, [2.0] * 500, [3.0] * 4],
            [[4.0] * 70, [5.0] * 3, [6.0] * 900],
        ]
        sequential = [drive_kernel(_toy_lane(blocks)) for blocks in lanes]
        stacked = StackedLanes([_toy_lane(blocks) for blocks in lanes]).run()
        assert stacked.results == sequential

    def test_mixed_widths_in_one_round(self):
        """Shorter rows must ignore the longer rows' columns entirely."""
        lanes = [
            [[1.0] * 1, [2.0] * 11],
            [[3.0] * 64, [4.0] * 2],
            [[5.0] * 7, [6.0] * 33],
        ]
        sequential = [drive_kernel(_toy_lane(blocks)) for blocks in lanes]
        stacked = StackedLanes([_toy_lane(blocks) for blocks in lanes]).run()
        assert stacked.results == sequential


# ----------------------------------------------------------------------
# End-to-end: full mix cells, every scheme
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def sequential_runs():
    return {
        scheme: run_mix_scheme(list(PAIRS), scheme, TEST)
        for scheme in SCHEME_NAMES
    }


class TestStackedEndToEnd:
    def test_every_scheme_bit_identical(self, sequential_runs):
        """All schemes as heterogeneous lanes of ONE stack.

        Heterogeneous lanes are the adversarial case: the assessing
        schemes (time, untangle) diverge mid-chunk on resizings while
        static/shared march straight through, and cells retire at
        different instruction counts, so early-finish divergence and
        post-divergence re-joining are all exercised in one run.
        """
        cells = [(list(PAIRS), scheme, TEST) for scheme in SCHEME_NAMES]
        stacked = run_mix_schemes_stacked(cells)
        for scheme, result in zip(SCHEME_NAMES, stacked):
            assert not isinstance(result, BaseException), result
            assert MixSchemeCell.encode(result) == MixSchemeCell.encode(
                sequential_runs[scheme]
            ), scheme

    def test_lane_cap_chunks_are_bit_identical(self, sequential_runs):
        cells = [(list(PAIRS), scheme, TEST) for scheme in SCHEME_NAMES]
        stacked = run_mix_schemes_stacked(cells, max_lanes=2)
        for scheme, result in zip(SCHEME_NAMES, stacked):
            assert MixSchemeCell.encode(result) == MixSchemeCell.encode(
                sequential_runs[scheme]
            ), scheme

    def test_mid_chunk_divergence_really_happens(self):
        """The equivalence above must cover diverged lanes, not dodge
        them: an untangle lane performs resizing assessments mid-run,
        so the stack must observe divergences (and still return the
        bit-identical result, checked by the tests above)."""
        prepared = [
            prepare_mix_scheme(list(PAIRS), scheme, TEST)
            for scheme in ("untangle", "static")
        ]
        stack = StackedLanes(
            [p.system.run_gen(p.profile.max_cycles) for p in prepared]
        ).run()
        assert stack.divergences > 0
        for prep, outcome in zip(prepared, stack.results):
            assert not isinstance(outcome, BaseException)
            prep.system.finish(*outcome)


# ----------------------------------------------------------------------
# Scratch arena reuse across chunk boundaries (the layer underneath)
# ----------------------------------------------------------------------
def _run_cells(cell_blocks, nested: bool):
    """Run a 'chunk' of little cells; return every observable.

    ``nested=True`` mirrors the worker/stacked driver: one chunk-level
    arena with a (reentrant, no-op) per-cell activation inside it, so
    buffers are reused across cells *and* across the chunk boundary.
    ``nested=False`` allocates fresh per cell.
    """
    arch = ArchConfig.tiny(num_cores=2)
    outputs = []
    with ExitStack() as chunk:
        if nested:
            chunk.enter_context(cell_scratch())
        for blocks in cell_blocks:
            with ExitStack() as cell:
                if nested:
                    cell.enter_context(cell_scratch())
                llc = PartitionedLLC(
                    arch.llc_lines,
                    arch.llc_associativity,
                    arch.num_cores,
                    arch.default_partition_lines,
                )
                memory = DomainMemory(arch, llc.view(0))
                for block in blocks:
                    latencies = memory.access_block(
                        np.asarray(block, dtype=np.int64)
                    )
                    outputs.append(latencies.tolist())
                outputs.append(dict(memory.level_counts))
    return outputs


class TestScratchAcrossChunks:
    @settings(max_examples=40, deadline=None)
    @given(
        cell_blocks=st.lists(
            st.lists(
                st.lists(
                    st.integers(min_value=0, max_value=150),
                    min_size=1,
                    max_size=40,
                ),
                min_size=1,
                max_size=4,
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_nested_reused_arena_matches_fresh_allocation(self, cell_blocks):
        assert _run_cells(cell_blocks, nested=True) == _run_cells(
            cell_blocks, nested=False
        )
