"""Tests for the core execution/timing model."""

import numpy as np
import pytest

from repro.config import ArchConfig
from repro.core.annotations import AnnotationVector
from repro.errors import ConfigurationError
from repro.sim.cpu import Core, CoreConfig, InstructionStream, StopReason
from repro.sim.hierarchy import DomainMemory
from repro.sim.partition import PartitionedLLC
from repro.sim.stats import DomainStats


def make_memory(arch: ArchConfig) -> DomainMemory:
    llc = PartitionedLLC(
        arch.llc_lines,
        arch.llc_associativity,
        arch.num_cores,
        arch.default_partition_lines,
    )
    return DomainMemory(arch, llc.view(0))


def make_core(
    arch: ArchConfig,
    addresses,
    annotations=None,
    stall_cycles=None,
    **config_overrides,
) -> Core:
    stream = InstructionStream(
        np.array(addresses, dtype=np.int64), annotations, stall_cycles
    )
    defaults = dict(mlp=1.0, slice_instructions=len(addresses))
    defaults.update(config_overrides)
    return Core(
        domain=0,
        stream=stream,
        memory=make_memory(arch),
        arch=arch,
        core_config=CoreConfig(**defaults),
        stats=DomainStats(domain=0),
    )



def run_to_completion(core, max_cycles=200_000):
    """Advance until the measured slice finishes (bounded for safety)."""
    while not core.finished and core.cycles < max_cycles:
        core.run(until_cycle=core.cycles + 5_000)
    return core


class TestInstructionStream:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            InstructionStream(np.array([], dtype=np.int64))

    def test_misaligned_annotations_rejected(self):
        with pytest.raises(ConfigurationError):
            InstructionStream(
                np.array([1, -1]), AnnotationVector.public(3)
            )

    def test_mem_positions(self):
        stream = InstructionStream(np.array([-1, 5, -1, 7]))
        assert stream.mem_positions.tolist() == [1, 3]
        assert stream.memory_instruction_count == 2
        assert stream.memory_fraction == pytest.approx(0.5)

    def test_cum_public_excludes_progress_annotated(self):
        annotations = AnnotationVector(
            np.array([False, False, True]), np.array([False, False, True])
        )
        stream = InstructionStream(np.array([-1, -1, -1]), annotations)
        assert stream.public_per_pass == 2

    def test_stall_positions_are_events(self):
        stalls = np.array([0, 10, 0])
        stream = InstructionStream(np.array([-1, -1, 5]), stall_cycles=stalls)
        assert stream.event_positions.tolist() == [1, 2]

    def test_negative_stalls_rejected(self):
        with pytest.raises(ConfigurationError):
            InstructionStream(
                np.array([-1]), stall_cycles=np.array([-5])
            )


class TestTimingModel:
    def test_nonmem_cost_is_cpi(self, tiny_arch):
        core = make_core(tiny_arch, [-1] * 40)
        run_to_completion(core)
        # 40 instructions at 1/4 CPI = 10 cycles per pass; the core wraps
        # passes until the budget, so check the measured slice instead.
        assert core.stats.ipc == pytest.approx(tiny_arch.issue_width)

    def test_memory_latency_added(self, tiny_arch):
        core = make_core(tiny_arch, [100])
        run_to_completion(core)
        # One instruction: cpi + dram latency (mlp 1).
        expected_cycles = 1 / tiny_arch.issue_width + tiny_arch.dram_latency
        assert core.stats.measured_cycles == pytest.approx(expected_cycles)

    def test_mlp_divides_latency(self, tiny_arch):
        slow = make_core(tiny_arch, [100, 101, 102], mlp=1.0)
        fast = make_core(tiny_arch, [100, 101, 102], mlp=4.0)
        run_to_completion(slow)
        run_to_completion(fast)
        assert fast.stats.measured_cycles < slow.stats.measured_cycles

    def test_stall_cycles_add_time(self, tiny_arch):
        plain = make_core(tiny_arch, [-1, -1])
        stalled = make_core(
            tiny_arch, [-1, -1], stall_cycles=np.array([500, 0])
        )
        run_to_completion(plain)
        run_to_completion(stalled)
        assert (
            stalled.stats.measured_cycles
            >= plain.stats.measured_cycles + 500
        )

    def test_jitter_changes_timing_not_retirement(self, tiny_arch):
        a = make_core(tiny_arch, [100, 101, -1, 102], timing_jitter=0)
        b = make_core(
            tiny_arch, [100, 101, -1, 102],
            timing_jitter=50, timing_jitter_seed=1,
        )
        run_to_completion(a)
        run_to_completion(b)
        assert a.stats.measured_instructions == b.stats.measured_instructions
        assert a.stats.measured_cycles != b.stats.measured_cycles


class TestProgressStops:
    def test_stops_exactly_at_progress_target(self, tiny_arch):
        core = make_core(tiny_arch, [-1] * 100)
        reason = core.run(until_cycle=1e9, progress_target=37)
        assert reason is StopReason.PROGRESS
        assert core.public_retired == 37
        assert core.retired == 37

    def test_progress_counts_skip_annotated(self, tiny_arch):
        annotations = AnnotationVector(
            np.zeros(10, dtype=bool),
            np.array([False, True] * 5),  # every other excluded
        )
        core = make_core(tiny_arch, [-1] * 10, annotations=annotations)
        reason = core.run(until_cycle=1e9, progress_target=3)
        assert reason is StopReason.PROGRESS
        assert core.public_retired == 3
        assert core.retired == 5  # needed 5 retirements to see 3 public

    def test_progress_crossing_on_memory_instruction(self, tiny_arch):
        core = make_core(tiny_arch, [-1, 100, -1])
        reason = core.run(until_cycle=1e9, progress_target=2)
        assert reason is StopReason.PROGRESS
        assert core.retired == 2  # stopped right after the memory op

    def test_progress_across_pass_wrap(self, tiny_arch):
        core = make_core(tiny_arch, [-1] * 10)
        reason = core.run(until_cycle=1e9, progress_target=25)
        assert reason is StopReason.PROGRESS
        assert core.public_retired == 25

    def test_quantum_stop(self, tiny_arch):
        core = make_core(tiny_arch, [-1] * 1000)
        reason = core.run(until_cycle=5.0)
        assert reason is StopReason.QUANTUM
        assert core.cycles >= 5.0

    def test_resume_after_progress(self, tiny_arch):
        core = make_core(tiny_arch, [-1] * 100)
        core.run(until_cycle=1e9, progress_target=10)
        reason = core.run(until_cycle=1e9, progress_target=20)
        assert reason is StopReason.PROGRESS
        assert core.public_retired == 20


class TestMeasurement:
    def test_warmup_excluded(self, tiny_arch):
        core = make_core(
            tiny_arch, [-1] * 100, warmup_instructions=50,
            slice_instructions=100,
        )
        run_to_completion(core)
        assert core.stats.measure_start_instructions >= 50
        assert core.stats.measured_instructions == pytest.approx(100, abs=2)

    def test_finished_flag(self, tiny_arch):
        core = make_core(tiny_arch, [-1] * 10, slice_instructions=10)
        assert not core.finished
        run_to_completion(core)
        assert core.finished

    def test_runs_past_slice_for_pressure(self, tiny_arch):
        """A finished core keeps executing (stats frozen)."""
        core = make_core(tiny_arch, [-1] * 10, slice_instructions=10)
        core.run(until_cycle=100.0)
        assert core.retired > 10
        assert core.stats.measured_instructions <= 11

    def test_fully_secret_stream_makes_no_progress(self, tiny_arch):
        annotations = AnnotationVector.fully_secret(10)
        core = make_core(tiny_arch, [-1] * 10, annotations=annotations)
        reason = core.run(until_cycle=50.0, progress_target=5)
        assert reason is StopReason.QUANTUM
        assert core.public_retired == 0
        assert core.retired > 0  # it executed, it just never counted


class TestConfigValidation:
    def test_bad_mlp(self):
        with pytest.raises(ConfigurationError):
            CoreConfig(mlp=0.0)

    def test_bad_slice(self):
        with pytest.raises(ConfigurationError):
            CoreConfig(slice_instructions=0)

    def test_bad_warmup(self):
        with pytest.raises(ConfigurationError):
            CoreConfig(warmup_instructions=-1)
