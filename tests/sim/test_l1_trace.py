"""Unit tests for the shared L1 service trace and the traced resolve path.

The end-to-end stacked-lanes suite already pins bit-identity of whole
simulations; these tests pin the trace primitive directly — the cyclic
walk, the warm/extend contract, geometry checking, and a differential
drive of a traced ``DomainMemory`` against an untraced twin through the
resolve/commit discipline, partial commits included.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ArchConfig
from repro.sim.hierarchy import (
    _TRACE_EXTEND_BLOCK,
    DomainMemory,
    L1ServiceTrace,
    MemoryLevel,
)
from repro.sim.kernelmode import make_cache
from repro.sim.partition import PartitionedLLC


def _cyclic(addrs: np.ndarray, start: int, n: int) -> np.ndarray:
    """Positions [start, start+n) of the cyclic stream over ``addrs``."""
    period = addrs.shape[0]
    idx = (np.arange(start, start + n)) % period
    return addrs[idx]


@pytest.fixture()
def stream_addrs() -> np.ndarray:
    rng = np.random.default_rng(7)
    # Enough distinct lines to force L1 misses and evictions on the
    # tiny machine (16 lines / 4 ways), with reuse for hits.
    return rng.integers(0, 96, size=400, dtype=np.int64)


class TestTraceWalk:
    def test_matches_live_l1_walk(self, tiny_arch, stream_addrs):
        trace = L1ServiceTrace(stream_addrs, tiny_arch)
        n = 3 * stream_addrs.shape[0] + 37  # multiple wraps, ragged stop
        got = trace.hits(0, n)

        l1_sets = max(1, tiny_arch.l1_lines // tiny_arch.l1_associativity)
        replica = make_cache(l1_sets, tiny_arch.l1_associativity)
        expected, _ = replica.access_run(_cyclic(stream_addrs, 0, n))
        assert np.array_equal(np.asarray(got), expected)

    def test_slices_are_stable_across_growth(self, tiny_arch, stream_addrs):
        trace = L1ServiceTrace(stream_addrs, tiny_arch)
        early = np.asarray(trace.hits(0, 50)).copy()
        view = trace.hits(0, 50)
        # Force several buffer reallocations, then re-check the view.
        trace.hits(0, 6 * stream_addrs.shape[0])
        assert np.array_equal(np.asarray(view), early)
        assert np.array_equal(np.asarray(trace.hits(0, 50)), early)

    def test_warm_covers_one_pass_plus_block(self, tiny_arch, stream_addrs):
        trace = L1ServiceTrace(stream_addrs, tiny_arch)
        trace.warm()
        walked = trace._walked
        assert walked >= stream_addrs.shape[0] + _TRACE_EXTEND_BLOCK
        # A consumer staying inside the warmed range never extends.
        trace.hits(0, stream_addrs.shape[0])
        assert trace._walked == walked
        trace.warm()  # idempotent
        assert trace._walked == walked

    def test_empty_stream(self, tiny_arch):
        trace = L1ServiceTrace(np.empty(0, dtype=np.int64), tiny_arch)
        trace.warm()  # a no-op, not an error
        with pytest.raises(ValueError):
            trace.hits(0, 1)

    def test_for_stream_filters_stall_slots(self, tiny_arch):
        class FakeStream:
            addresses = np.array([5, -1, 7, -1, 9], dtype=np.int64)
            event_positions = np.array([0, 1, 2, 4])

        trace = L1ServiceTrace.for_stream(FakeStream(), tiny_arch)
        assert trace._period == 3  # -1 stall slots dropped


class TestInstall:
    def test_geometry_mismatch_raises(self, tiny_arch, stream_addrs):
        other = ArchConfig.scaled()
        assert (other.l1_lines, other.l1_associativity) != (
            tiny_arch.l1_lines,
            tiny_arch.l1_associativity,
        )
        trace = L1ServiceTrace(stream_addrs, other)
        memory = _make_memory(tiny_arch)
        with pytest.raises(ValueError, match="geometry"):
            memory.install_l1_trace(trace)


class RecordingMonitor:
    def __init__(self):
        self.observed: list[int] = []

    def observe(self, line_addr):
        self.observed.append(line_addr)


def _make_memory(arch: ArchConfig) -> DomainMemory:
    llc = PartitionedLLC(
        arch.llc_lines,
        arch.llc_associativity,
        arch.num_cores,
        arch.default_partition_lines,
    )
    return DomainMemory(arch, llc.view(0), monitor=RecordingMonitor())


class TestTracedDifferential:
    """Drive traced and untraced twins through resolve/commit lock-step."""

    def _drive(self, tiny_arch, stream_addrs, commit_plan):
        traced = _make_memory(tiny_arch)
        plain = _make_memory(tiny_arch)
        trace = L1ServiceTrace(stream_addrs, tiny_arch)
        traced.install_l1_trace(trace)

        rng = np.random.default_rng(11)
        pos = 0
        for block_len, count in commit_plan:
            block = _cyclic(stream_addrs, pos, block_len)
            excluded = rng.random(block_len) < 0.25
            lat_traced, tok_traced = traced.resolve_block(block)
            lat_plain, tok_plain = plain.resolve_block(block)
            assert np.array_equal(lat_traced, lat_plain)
            traced.commit_block(tok_traced, count, metric_excluded=excluded)
            plain.commit_block(tok_plain, count, metric_excluded=excluded)
            pos += count

        assert traced.level_counts == plain.level_counts
        # Eviction counts are not modeled on the traced L1, but the
        # served hit/miss counts must agree.
        assert traced.l1.stats.hits == plain.l1.stats.hits
        assert traced.l1.stats.misses == plain.l1.stats.misses
        assert traced.monitor.observed == plain.monitor.observed
        assert traced.level_counts[MemoryLevel.L1] > 0
        assert traced.level_counts[MemoryLevel.DRAM] > 0
        return traced, plain

    def test_full_commits(self, tiny_arch, stream_addrs):
        plan = [(60, 60)] * 9  # wraps past the period
        self._drive(tiny_arch, stream_addrs, plan)

    def test_partial_commits_roll_back_and_replay(self, tiny_arch, stream_addrs):
        plan = [(50, 50), (64, 23), (64, 0), (40, 40), (80, 17), (64, 64)]
        traced, plain = self._drive(tiny_arch, stream_addrs, plan)
        # The LLC genuinely walked both twins identically, rollback
        # replays included.
        t_stats = traced.llc_view.kernel_binding()[0].stats
        p_stats = plain.llc_view.kernel_binding()[0].stats
        assert (t_stats.hits, t_stats.misses) == (p_stats.hits, p_stats.misses)
