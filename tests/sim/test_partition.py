"""Tests for the partitioned and shared LLC organizations."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.partition import (
    PartitionedLLC,
    SharedLLC,
    sets_for_lines,
)


class TestSetsForLines:
    def test_whole_sets(self):
        assert sets_for_lines(64, 16) == 4

    def test_partial_set_rejected(self):
        with pytest.raises(ConfigurationError):
            sets_for_lines(65, 16)

    def test_below_one_set_rejected(self):
        with pytest.raises(ConfigurationError):
            sets_for_lines(8, 16)


class TestPartitionedLLC:
    def make(self, total=256, ways=8, domains=2, initial=32):
        return PartitionedLLC(total, ways, domains, initial)

    def test_initial_sizes(self):
        llc = self.make()
        assert llc.size_of(0) == 32
        assert llc.size_of(1) == 32
        assert llc.allocated_lines == 64
        assert llc.free_lines == 192

    def test_overcommitted_initial_rejected(self):
        with pytest.raises(ConfigurationError):
            PartitionedLLC(64, 8, 4, 32)

    def test_domain_isolation(self):
        """Equal addresses in different domains never interfere."""
        llc = self.make()
        llc.access(0, 100)
        assert not llc.access(1, 100)  # still a miss for domain 1
        assert llc.access(0, 100)  # still a hit for domain 0

    def test_view_routes_to_domain(self):
        llc = self.make()
        view = llc.view(1)
        view.access(7)
        assert llc.stats_of(1).misses == 1
        assert llc.stats_of(0).accesses == 0

    def test_view_out_of_range(self):
        with pytest.raises(ConfigurationError):
            self.make().view(5)

    def test_resize_updates_capacity(self):
        llc = self.make()
        outcome = llc.resize(0, 64)
        assert outcome.old_lines == 32
        assert outcome.new_lines == 64
        assert llc.size_of(0) == 64
        assert llc.free_lines == 160

    def test_resize_beyond_capacity_rejected(self):
        llc = self.make(total=64, ways=8, domains=2, initial=24)
        with pytest.raises(SimulationError):
            llc.resize(0, 48)  # 48 + 24 > 64

    def test_resize_same_size_records_noop(self):
        llc = self.make()
        outcome = llc.resize(0, 32)
        assert outcome.lines_lost == 0
        assert llc.resizes[-1] is outcome

    def test_shrink_loses_lines(self):
        llc = self.make(total=256, ways=8, domains=1, initial=64)
        for addr in range(64):
            llc.access(0, addr)
        outcome = llc.resize(0, 8)
        assert outcome.lines_lost > 0
        assert llc.cache_of(0).resident_lines <= 8

    def test_available_for(self):
        llc = self.make()
        assert llc.available_for(0) == 192 + 32


class TestSharedLLC:
    def test_domains_conflict(self):
        """The same hot set pressure from two domains causes evictions."""
        llc = SharedLLC(total_lines=16, associativity=2, num_domains=2)
        # Fill the cache from domain 0, then hammer from domain 1.
        for addr in range(16):
            llc.access(0, addr)
        hits_before = llc.stats_of(0).hits
        for addr in range(64):
            llc.access(1, addr)
        for addr in range(16):
            llc.access(0, addr)
        # Domain 1 traffic evicted domain 0's lines: re-touching misses.
        assert llc.stats_of(0).misses > 16

    def test_equal_addresses_do_not_false_share(self):
        llc = SharedLLC(total_lines=64, associativity=4, num_domains=2)
        llc.access(0, 5)
        assert not llc.access(1, 5)

    def test_view(self):
        llc = SharedLLC(total_lines=64, associativity=4, num_domains=2)
        view = llc.view(0)
        view.access(3)
        assert llc.stats_of(0).accesses == 1

    def test_view_out_of_range(self):
        llc = SharedLLC(total_lines=64, associativity=4, num_domains=2)
        with pytest.raises(ConfigurationError):
            llc.view(2)

    def test_nominal_size_is_whole_llc(self):
        llc = SharedLLC(total_lines=64, associativity=4, num_domains=2)
        assert llc.size_of(0) == 64

    def test_domain_addresses_spread_across_sets(self):
        """The domain fold must not stripe domains into set subsets."""
        llc = SharedLLC(total_lines=256, associativity=2, num_domains=8)
        num_sets = llc._cache.num_sets
        touched = set()
        for addr in range(num_sets):
            touched.add((addr + 3 * llc._DOMAIN_STRIDE) % num_sets)
        # Domain 3's sequential addresses should cover every set.
        assert len(touched) == num_sets
