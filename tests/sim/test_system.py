"""Tests for the multicore system driver."""

import numpy as np
import pytest

from repro.config import ArchConfig
from repro.core.actions import maintain
from repro.errors import ConfigurationError
from repro.schemes.static import StaticScheme
from repro.sim.cpu import CoreConfig, InstructionStream
from repro.sim.system import DomainSpec, MultiDomainSystem


def make_domains(arch: ArchConfig, instructions: int = 200):
    domains = []
    for i in range(arch.num_cores):
        addresses = np.full(instructions, -1, dtype=np.int64)
        addresses[::5] = 100 + np.arange(len(addresses[::5])) + i * 10_000
        stream = InstructionStream(addresses)
        domains.append(
            DomainSpec(
                name=f"d{i}",
                stream=stream,
                core_config=CoreConfig(mlp=2.0, slice_instructions=instructions),
            )
        )
    return domains


class TestConstruction:
    def test_domain_count_must_match_cores(self, tiny_arch):
        with pytest.raises(ConfigurationError):
            MultiDomainSystem(
                tiny_arch, make_domains(tiny_arch)[:1], StaticScheme(tiny_arch)
            )

    def test_bad_quantum_rejected(self, tiny_arch):
        with pytest.raises(ConfigurationError):
            MultiDomainSystem(
                tiny_arch,
                make_domains(tiny_arch),
                StaticScheme(tiny_arch),
                quantum=0,
            )


class TestRun:
    def test_runs_to_completion(self, tiny_arch):
        system = MultiDomainSystem(
            tiny_arch, make_domains(tiny_arch), StaticScheme(tiny_arch),
            quantum=50,
        )
        result = system.run(max_cycles=1_000_000)
        assert result.completed
        assert all(s.finished for s in result.stats)
        assert all(s.ipc > 0 for s in result.stats)

    def test_completed_when_finishing_in_final_quantum(self, tiny_arch):
        """Finishing during the last quantum at exactly max_cycles counts.

        Regression: ``all_finished`` was only checked at the top of the
        loop, so a run capped at precisely its own total cycle count
        reported ``completed=False`` even though every core finished.
        """
        reference = MultiDomainSystem(
            tiny_arch, make_domains(tiny_arch), StaticScheme(tiny_arch),
            quantum=50,
        ).run(max_cycles=1_000_000)
        assert reference.completed

        capped = MultiDomainSystem(
            tiny_arch, make_domains(tiny_arch), StaticScheme(tiny_arch),
            quantum=50,
        ).run(max_cycles=reference.total_cycles)
        assert all(s.finished for s in capped.stats)
        assert capped.completed

    def test_max_cycles_cap(self, tiny_arch):
        system = MultiDomainSystem(
            tiny_arch,
            make_domains(tiny_arch, instructions=100_000),
            StaticScheme(tiny_arch),
            quantum=50,
        )
        result = system.run(max_cycles=200)
        assert not result.completed
        assert result.total_cycles <= 200

    def test_capped_run_reports_partial_ipc(self, tiny_arch):
        """Regression: a domain cut short by max_cycles reported IPC 0
        even though it retired instructions the whole time — the
        measurement window was never closed."""
        system = MultiDomainSystem(
            tiny_arch,
            make_domains(tiny_arch, instructions=100_000),
            StaticScheme(tiny_arch),
            quantum=50,
        )
        result = system.run(max_cycles=200)
        assert not result.completed
        for stats in result.stats:
            assert not stats.finished
            assert stats.measured_instructions > 0
            assert stats.ipc > 0

    def test_static_scheme_has_empty_traces(self, tiny_arch):
        system = MultiDomainSystem(
            tiny_arch, make_domains(tiny_arch), StaticScheme(tiny_arch)
        )
        result = system.run()
        assert all(len(trace) == 0 for trace in result.traces)

    def test_partition_samples_collected(self, tiny_arch):
        system = MultiDomainSystem(
            tiny_arch,
            make_domains(tiny_arch, instructions=2_000),
            StaticScheme(tiny_arch),
            quantum=50,
            sample_interval=100,
        )
        result = system.run()
        assert len(result.stats[0].partition_samples) > 1
        sizes = {s.lines for s in result.stats[0].partition_samples}
        assert sizes == {tiny_arch.default_partition_lines}

    def test_record_action_forces_increasing_timestamps(self, tiny_arch):
        system = MultiDomainSystem(
            tiny_arch, make_domains(tiny_arch), StaticScheme(tiny_arch)
        )
        system.record_action(0, maintain(32), 100)
        system.record_action(0, maintain(32), 100)  # collision nudged
        assert system.trace_logs[0][1][1] == 101

    def test_deterministic_across_runs(self, tiny_arch):
        results = []
        for _ in range(2):
            system = MultiDomainSystem(
                tiny_arch, make_domains(tiny_arch), StaticScheme(tiny_arch),
                quantum=50,
            )
            outcome = system.run()
            results.append([s.ipc for s in outcome.stats])
        assert results[0] == results[1]
