"""Tests for the per-domain memory hierarchy."""

import pytest

from repro.config import ArchConfig
from repro.sim.hierarchy import DomainMemory, MemoryLevel
from repro.sim.partition import PartitionedLLC


class RecordingMonitor:
    def __init__(self):
        self.observed = []

    def observe(self, line_addr):
        self.observed.append(line_addr)


@pytest.fixture()
def setup(tiny_arch):
    llc = PartitionedLLC(
        tiny_arch.llc_lines,
        tiny_arch.llc_associativity,
        tiny_arch.num_cores,
        tiny_arch.default_partition_lines,
    )
    monitor = RecordingMonitor()
    memory = DomainMemory(tiny_arch, llc.view(0), monitor=monitor)
    return memory, monitor, tiny_arch


class TestLatencies:
    def test_l1_hit_latency(self, setup):
        memory, _, arch = setup
        memory.access(1)  # install
        assert memory.access(1) == arch.l1_latency
        assert memory.level_counts[MemoryLevel.L1] == 1

    def test_llc_hit_latency(self, setup):
        memory, _, arch = setup
        memory.access(1)  # now in L1 and LLC
        # Evict from L1 by filling its set, keeping LLC resident.
        l1_sets = memory.l1.num_sets
        for i in range(1, arch.l1_associativity + 1):
            memory.access(1 + i * l1_sets)
        latency = memory.access(1)
        assert latency == arch.llc_latency

    def test_dram_latency_on_cold_miss(self, setup):
        memory, _, arch = setup
        assert memory.access(12345) == arch.dram_latency
        assert memory.level_counts[MemoryLevel.DRAM] == 1

    def test_reset_level_counts(self, setup):
        memory, _, _ = setup
        memory.access(1)
        memory.reset_level_counts()
        assert all(v == 0 for v in memory.level_counts.values())


class TestMonitorFeeding:
    def test_l1_hits_filtered_from_monitor(self, setup):
        memory, monitor, _ = setup
        memory.access(1)
        memory.access(1)  # L1 hit, not monitored
        assert monitor.observed == [1]

    def test_secret_accesses_hidden_when_respecting_annotations(self, setup):
        memory, monitor, _ = setup
        memory.access(10, metric_excluded=True)
        assert monitor.observed == []

    def test_secret_accesses_visible_when_not_respecting(self, tiny_arch):
        llc = PartitionedLLC(
            tiny_arch.llc_lines,
            tiny_arch.llc_associativity,
            tiny_arch.num_cores,
            tiny_arch.default_partition_lines,
        )
        monitor = RecordingMonitor()
        memory = DomainMemory(
            tiny_arch,
            llc.view(0),
            monitor=monitor,
            monitor_respects_annotations=False,
        )
        memory.access(10, metric_excluded=True)
        assert monitor.observed == [10]

    def test_secret_accesses_still_fill_caches(self, setup):
        """Annotated accesses move data normally — only the monitor is blind."""
        memory, _, arch = setup
        memory.access(10, metric_excluded=True)
        assert memory.access(10, metric_excluded=True) == arch.l1_latency

    def test_no_monitor_is_fine(self, tiny_arch):
        llc = PartitionedLLC(
            tiny_arch.llc_lines,
            tiny_arch.llc_associativity,
            tiny_arch.num_cores,
            tiny_arch.default_partition_lines,
        )
        memory = DomainMemory(tiny_arch, llc.view(0))
        assert memory.access(3) == tiny_arch.dram_latency
