"""Differential tests: the batched kernel against the reference kernel.

The packed-recency :class:`~repro.sim.cache.SetAssociativeCache` and the
batched hierarchy path (:meth:`~repro.sim.hierarchy.DomainMemory.
resolve_block` / :meth:`~repro.sim.hierarchy.DomainMemory.commit_block`)
claim *bit-identical* behavior to the retained list-based reference
kernel. These tests drive both implementations through randomized
operation sequences — accesses and access runs interleaved with
``resize_sets``, ``invalidate``, ``probe`` and snapshot/restore
round-trips — and compare every observable after every step: hit/miss
results, hit/miss/eviction/invalidation counters, resident counts, and
the full resident set in recency order.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cache import ReferenceSetAssociativeCache, SetAssociativeCache
from repro.sim.hierarchy import DomainMemory, MemoryLevel
from repro.sim.kernelmode import KERNEL_ENV
from repro.sim.partition import PartitionedLLC, SharedLLC


# ----------------------------------------------------------------------
# Cache-level differential property test
# ----------------------------------------------------------------------
_ADDR = st.integers(min_value=0, max_value=48)

_OPS = st.one_of(
    st.tuples(st.just("access"), _ADDR),
    st.tuples(st.just("access_run"), st.lists(_ADDR, min_size=1, max_size=24)),
    st.tuples(st.just("probe"), _ADDR, st.booleans()),
    st.tuples(st.just("invalidate"), _ADDR),
    st.tuples(st.just("invalidate_all")),
    st.tuples(st.just("resize_sets"), st.integers(min_value=1, max_value=9)),
    st.tuples(
        st.just("speculate"),
        st.lists(_ADDR, min_size=1, max_size=16),
        st.booleans(),  # restore (discard) or keep the speculative run
    ),
)


def _state(cache) -> tuple:
    """Every observable of a cache, for exact comparison."""
    stats = cache.stats
    return (
        cache.num_sets,
        cache.resident_lines,
        cache.resident_addresses(),
        (stats.hits, stats.misses, stats.evictions, stats.invalidations),
    )


def _apply(cache, op) -> object:
    """Run one operation; returns its comparable result."""
    if op[0] == "access":
        return cache.access(op[1])
    if op[0] == "access_run":
        hits, evictions = cache.access_run(np.array(op[1], dtype=np.int64))
        return (hits.tolist(), evictions)
    if op[0] == "probe":
        return cache.probe(op[1], touch=op[2])
    if op[0] == "invalidate":
        return cache.invalidate(op[1])
    if op[0] == "invalidate_all":
        return cache.invalidate_all()
    if op[0] == "resize_sets":
        return cache.resize_sets(op[1])
    assert op[0] == "speculate"
    addrs = np.array(op[1], dtype=np.int64)
    snapshot = cache.snapshot_for(addrs)
    hits, evictions = cache.access_run(addrs)
    if op[2]:
        cache.restore_snapshot(snapshot)
    return (hits.tolist(), evictions, op[2])


class TestCacheDifferential:
    @settings(max_examples=150, deadline=None)
    @given(
        num_sets=st.integers(min_value=1, max_value=7),
        associativity=st.integers(min_value=1, max_value=4),
        ops=st.lists(_OPS, min_size=1, max_size=40),
    )
    def test_packed_recency_matches_reference(self, num_sets, associativity, ops):
        fast = SetAssociativeCache(num_sets, associativity)
        reference = ReferenceSetAssociativeCache(num_sets, associativity)
        for op in ops:
            assert _apply(fast, op) == _apply(reference, op), op
            assert _state(fast) == _state(reference), op

    def test_snapshot_restore_is_exact_after_eviction_pressure(self):
        fast = SetAssociativeCache(2, 2)
        reference = ReferenceSetAssociativeCache(2, 2)
        warm = np.array([0, 1, 2, 3, 4, 5], dtype=np.int64)
        run = np.array([6, 8, 10, 0, 6], dtype=np.int64)
        for cache in (fast, reference):
            cache.access_run(warm)
            before = _state(cache)
            snapshot = cache.snapshot_for(run)
            cache.access_run(run)
            assert _state(cache) != before  # the run really changed state
            cache.restore_snapshot(snapshot)
            assert _state(cache) == before
        assert _state(fast) == _state(reference)


# ----------------------------------------------------------------------
# Hierarchy-level differential: resolve/commit vs the scalar loop
# ----------------------------------------------------------------------
class RecordingMonitor:
    def __init__(self):
        self.observed: list[int] = []

    def observe(self, line_addr: int) -> None:
        self.observed.append(line_addr)


def _build_memory(tiny_arch, organization: str, monkeypatch, mode: str):
    """One DomainMemory over a fresh LLC, built under the given kernel."""
    monkeypatch.setenv(KERNEL_ENV, mode)
    if organization == "partitioned":
        llc = PartitionedLLC(
            tiny_arch.llc_lines,
            tiny_arch.llc_associativity,
            tiny_arch.num_cores,
            tiny_arch.default_partition_lines,
        )
    else:
        llc = SharedLLC(
            tiny_arch.llc_lines, tiny_arch.llc_associativity, tiny_arch.num_cores
        )
    monitor = RecordingMonitor()
    memory = DomainMemory(tiny_arch, llc.view(0), monitor=monitor)
    monkeypatch.delenv(KERNEL_ENV, raising=False)
    return memory, llc, monitor


def _memory_state(memory, llc) -> tuple:
    l1 = memory.l1
    return (
        dict(memory.level_counts),
        _state(l1),
        _state(llc.cache_of(0) if isinstance(llc, PartitionedLLC) else llc._cache),
        (llc.stats_of(0).hits, llc.stats_of(0).misses),
    )


@pytest.mark.parametrize("organization", ["partitioned", "shared"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_partial_commit_matches_scalar_prefix(
    tiny_arch, monkeypatch, organization, seed
):
    """resolve_block + commit_block(k) == k scalar accesses, exactly.

    Random runs with random commit prefixes (including 0 and full), with
    secret annotations, interleaved with partition resizes — the batched
    CPU kernel's whole contract against the hierarchy, checked directly.
    """
    batched, batched_llc, batched_monitor = _build_memory(
        tiny_arch, organization, monkeypatch, "batched"
    )
    scalar, scalar_llc, scalar_monitor = _build_memory(
        tiny_arch, organization, monkeypatch, "reference"
    )
    rng = np.random.default_rng(seed)
    sizes = sorted(
        lines
        for lines in range(
            tiny_arch.llc_associativity,
            tiny_arch.default_partition_lines + 1,
            tiny_arch.llc_associativity,
        )
    )
    for step in range(30):
        n = int(rng.integers(1, 40))
        addrs = rng.integers(0, 200, size=n).astype(np.int64)
        excluded = rng.random(n) < 0.3
        k = int(rng.integers(0, n + 1))

        latencies, token = batched.resolve_block(addrs, speculative=True)
        assert latencies.shape == (n,)
        batched.commit_block(token, k, excluded)

        scalar_latencies = [
            scalar.access(int(addrs[i]), bool(excluded[i])) for i in range(k)
        ]
        assert latencies[:k].tolist() == scalar_latencies

        assert _memory_state(batched, batched_llc) == _memory_state(
            scalar, scalar_llc
        )
        assert batched_monitor.observed == scalar_monitor.observed

        if organization == "partitioned" and step % 7 == 3:
            new_lines = int(rng.choice(sizes))
            outcome_b = batched_llc.resize(0, new_lines)
            outcome_s = scalar_llc.resize(0, new_lines)
            assert outcome_b == outcome_s


def test_access_block_matches_scalar_loop(tiny_arch, monkeypatch):
    """The non-speculative one-shot path, annotations included."""
    batched, batched_llc, batched_monitor = _build_memory(
        tiny_arch, "partitioned", monkeypatch, "batched"
    )
    scalar, scalar_llc, scalar_monitor = _build_memory(
        tiny_arch, "partitioned", monkeypatch, "reference"
    )
    rng = np.random.default_rng(7)
    addrs = rng.integers(0, 150, size=500).astype(np.int64)
    excluded = rng.random(500) < 0.25
    latencies = batched.access_block(addrs, excluded)
    scalar_latencies = [
        scalar.access(int(a), bool(x)) for a, x in zip(addrs, excluded)
    ]
    assert latencies.tolist() == scalar_latencies
    assert _memory_state(batched, batched_llc) == _memory_state(scalar, scalar_llc)
    assert batched_monitor.observed == scalar_monitor.observed
    assert batched.level_counts[MemoryLevel.DRAM] > 0  # the trace really missed


def test_commit_zero_leaves_no_trace(tiny_arch, monkeypatch):
    """A fully rolled-back block is invisible (the mop-up boundary case)."""
    batched, batched_llc, _ = _build_memory(
        tiny_arch, "partitioned", monkeypatch, "batched"
    )
    warm = np.arange(0, 32, dtype=np.int64)
    batched.access_block(warm)
    before = _memory_state(batched, batched_llc)
    _, token = batched.resolve_block(np.array([100, 101, 0], dtype=np.int64))
    batched.commit_block(token, 0)
    assert _memory_state(batched, batched_llc) == before
