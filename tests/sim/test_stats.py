"""Tests for per-domain statistics."""

import pytest

from repro.sim.stats import DomainStats


class TestMeasurement:
    def test_ipc(self):
        stats = DomainStats(domain=0)
        stats.begin_measurement(100.0, 1000)
        stats.end_measurement(300.0, 1400)
        assert stats.measured_instructions == 400
        assert stats.measured_cycles == pytest.approx(200.0)
        assert stats.ipc == pytest.approx(2.0)

    def test_ipc_zero_without_measurement(self):
        assert DomainStats(domain=0).ipc == 0.0

    def test_end_measurement_idempotent(self):
        stats = DomainStats(domain=0)
        stats.begin_measurement(0.0, 0)
        stats.end_measurement(10.0, 10)
        stats.end_measurement(20.0, 20)  # ignored: already finished
        assert stats.measured_instructions == 10


class TestLeakageCounters:
    def test_bits_per_assessment(self):
        stats = DomainStats(domain=0)
        stats.assessments = 4
        stats.leakage_bits = 2.0
        assert stats.bits_per_assessment == pytest.approx(0.5)

    def test_maintain_fraction(self):
        stats = DomainStats(domain=0)
        stats.assessments = 10
        stats.visible_actions = 3
        assert stats.maintain_fraction == pytest.approx(0.7)

    def test_fractions_zero_without_assessments(self):
        stats = DomainStats(domain=0)
        assert stats.bits_per_assessment == 0.0
        assert stats.maintain_fraction == 0.0


class TestPartitionSamples:
    def test_samples_stop_after_finish(self):
        stats = DomainStats(domain=0)
        stats.record_partition_sample(10, 32)
        stats.begin_measurement(0.0, 0)
        stats.end_measurement(20.0, 100)
        stats.record_partition_sample(30, 64)
        assert len(stats.partition_samples) == 1

    def test_quartiles_empty(self):
        assert DomainStats(domain=0).partition_size_quartiles() == (0, 0, 0, 0, 0)

    def test_quartiles_of_known_values(self):
        stats = DomainStats(domain=0)
        for i, lines in enumerate([10, 20, 30, 40, 50]):
            stats.record_partition_sample(i, lines)
        minimum, q1, median, q3, maximum = stats.partition_size_quartiles()
        assert minimum == 10
        assert median == 30
        assert maximum == 50
        assert q1 == 20
        assert q3 == 40

    def test_quartiles_single_sample(self):
        stats = DomainStats(domain=0)
        stats.record_partition_sample(0, 42)
        assert stats.partition_size_quartiles() == (42, 42, 42, 42, 42)
