"""Tests for per-domain statistics."""

import pytest

from repro.sim.stats import DomainStats


class TestMeasurement:
    def test_ipc(self):
        stats = DomainStats(domain=0)
        stats.begin_measurement(100.0, 1000)
        stats.end_measurement(300.0, 1400)
        assert stats.measured_instructions == 400
        assert stats.measured_cycles == pytest.approx(200.0)
        assert stats.ipc == pytest.approx(2.0)

    def test_ipc_zero_without_measurement(self):
        assert DomainStats(domain=0).ipc == 0.0

    def test_end_measurement_idempotent(self):
        stats = DomainStats(domain=0)
        stats.begin_measurement(0.0, 0)
        stats.end_measurement(10.0, 10)
        stats.end_measurement(20.0, 20)  # ignored: already finished
        assert stats.measured_instructions == 10


class TestCloseMeasurementWindow:
    def test_unfinished_slice_reports_partial_ipc(self):
        """Regression: a slice cut short by the cycle cap reported IPC 0.

        ``end_measurement`` was never called, leaving the window open;
        closing it at simulation end books the instructions that did
        run without marking the slice finished.
        """
        stats = DomainStats(domain=0)
        stats.begin_measurement(100.0, 1000)
        stats.close_measurement_window(300.0, 1400)
        assert not stats.finished
        assert stats.measured_instructions == 400
        assert stats.ipc == pytest.approx(2.0)

    def test_noop_for_finished_slice(self):
        stats = DomainStats(domain=0)
        stats.begin_measurement(0.0, 0)
        stats.end_measurement(10.0, 10)
        stats.close_measurement_window(50.0, 500)
        assert stats.finished
        assert stats.measured_instructions == 10

    def test_noop_during_warmup(self):
        stats = DomainStats(domain=0)
        stats.close_measurement_window(50.0, 500)
        assert stats.measured_instructions == 0
        assert stats.ipc == 0.0


class TestLeakageCounters:
    def test_bits_per_assessment(self):
        stats = DomainStats(domain=0)
        stats.assessments = 4
        stats.leakage_bits = 2.0
        assert stats.bits_per_assessment == pytest.approx(0.5)

    def test_maintain_fraction(self):
        stats = DomainStats(domain=0)
        stats.assessments = 10
        stats.visible_actions = 3
        assert stats.maintain_fraction == pytest.approx(0.7)

    def test_fractions_zero_without_assessments(self):
        stats = DomainStats(domain=0)
        assert stats.bits_per_assessment == 0.0
        assert stats.maintain_fraction == 0.0


class TestPartitionSamples:
    def test_samples_stop_after_finish(self):
        stats = DomainStats(domain=0)
        stats.record_partition_sample(10, 32)
        stats.begin_measurement(0.0, 0)
        stats.end_measurement(20.0, 100)
        stats.record_partition_sample(30, 64)
        assert len(stats.partition_samples) == 1

    def test_quartiles_empty(self):
        assert DomainStats(domain=0).partition_size_quartiles() == (0, 0, 0, 0, 0)

    def test_quartiles_of_known_values(self):
        stats = DomainStats(domain=0)
        for i, lines in enumerate([10, 20, 30, 40, 50]):
            stats.record_partition_sample(i, lines)
        minimum, q1, median, q3, maximum = stats.partition_size_quartiles()
        assert minimum == 10
        assert median == 30
        assert maximum == 50
        assert q1 == 20
        assert q3 == 40

    def test_quartiles_single_sample(self):
        stats = DomainStats(domain=0)
        stats.record_partition_sample(0, 42)
        assert stats.partition_size_quartiles() == (42, 42, 42, 42, 42)

    @staticmethod
    def _quartiles_of(values):
        stats = DomainStats(domain=0)
        for i, lines in enumerate(values):
            stats.record_partition_sample(i, lines)
        return stats.partition_size_quartiles()

    def test_quartiles_interpolate_even_n(self):
        """Regression: ``round(0.25 * 3) == 1`` but ``round(0.75 * 3) == 2``
        only by luck — banker's rounding of ``round(0.5)`` made q1/q3
        asymmetric for other sample counts. Linear interpolation is
        symmetric by construction."""
        minimum, q1, median, q3, maximum = self._quartiles_of([10, 20, 30, 40])
        assert (minimum, maximum) == (10, 40)
        assert q1 == pytest.approx(17.5)
        assert median == pytest.approx(25.0)
        assert q3 == pytest.approx(32.5)

    def test_quartiles_symmetric_for_symmetric_samples(self):
        # For any symmetric sample set the quartiles must mirror around
        # the median — exactly what banker's rounding used to break
        # (n=6: old q1 index round(1.25)=1 vs q3 index round(3.75)=4,
        # distances 1 and 1 from the ends, but n=10 gave 2 and 3).
        for n in range(2, 12):
            values = list(range(0, 10 * n, 10))
            minimum, q1, median, q3, maximum = self._quartiles_of(values)
            assert q1 - minimum == pytest.approx(maximum - q3)
            assert median - q1 == pytest.approx(q3 - median)

    def test_quartiles_small_n_pair(self):
        minimum, q1, median, q3, maximum = self._quartiles_of([100, 200])
        assert (minimum, maximum) == (100, 200)
        assert q1 == pytest.approx(125.0)
        assert median == pytest.approx(150.0)
        assert q3 == pytest.approx(175.0)

    def test_quartiles_match_numpy_percentiles(self):
        np = pytest.importorskip("numpy")
        values = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5]
        _, q1, median, q3, _ = self._quartiles_of(values)
        assert q1 == pytest.approx(np.percentile(values, 25))
        assert median == pytest.approx(np.percentile(values, 50))
        assert q3 == pytest.approx(np.percentile(values, 75))
