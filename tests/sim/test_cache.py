"""Tests for the set-associative cache, including an LRU reference model."""

from collections import OrderedDict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sim.cache import ReferenceSetAssociativeCache, SetAssociativeCache
from repro.sim.replacement import FIFOPolicy, LRUPolicy


class ReferenceLRUCache:
    """An obviously-correct set-associative LRU model (OrderedDict per set)."""

    def __init__(self, num_sets, associativity):
        self.num_sets = num_sets
        self.associativity = associativity
        self.sets = [OrderedDict() for _ in range(num_sets)]

    def access(self, addr):
        ways = self.sets[addr % self.num_sets]
        if addr in ways:
            ways.move_to_end(addr)
            return True
        if len(ways) >= self.associativity:
            ways.popitem(last=False)
        ways[addr] = None
        return False


class TestBasics:
    def test_geometry_validation(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(0, 4)
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(4, 0)

    def test_miss_then_hit(self):
        cache = SetAssociativeCache(2, 2)
        assert not cache.access(10)
        assert cache.access(10)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_capacity_and_residency(self):
        cache = SetAssociativeCache(2, 2)
        for addr in range(4):
            cache.access(addr)
        assert cache.capacity_lines == 4
        assert cache.resident_lines == 4

    def test_lru_eviction_order(self):
        cache = SetAssociativeCache(1, 2)
        cache.access(1)
        cache.access(2)
        cache.access(1)  # 2 is now LRU
        cache.access(3)  # evicts 2
        assert cache.contains(1)
        assert not cache.contains(2)
        assert cache.contains(3)

    def test_set_isolation(self):
        cache = SetAssociativeCache(2, 1)
        cache.access(0)  # set 0
        cache.access(1)  # set 1
        assert cache.contains(0) and cache.contains(1)
        cache.access(2)  # set 0, evicts 0
        assert not cache.contains(0)
        assert cache.contains(1)

    @pytest.mark.parametrize(
        "cache_class", [SetAssociativeCache, ReferenceSetAssociativeCache]
    )
    def test_probe_does_not_allocate(self, cache_class):
        cache = cache_class(1, 2)
        assert not cache.probe(7)
        assert not cache.contains(7)

    @pytest.mark.parametrize(
        "cache_class", [SetAssociativeCache, ReferenceSetAssociativeCache]
    )
    def test_probe_is_read_only_by_default(self, cache_class):
        """A plain probe must not perturb recency (the documented contract).

        The original model refreshed LRU on a probe hit, silently turning
        an "inspection" into a replacement-state update; this pins the
        fixed read-only behavior for both implementations.
        """
        cache = cache_class(1, 2)
        cache.access(1)
        cache.access(2)
        assert cache.probe(1)  # read-only: 1 stays LRU
        cache.access(3)  # evicts 1
        assert not cache.contains(1)
        assert cache.contains(2)
        assert cache.contains(3)
        # Probes never touch the hit/miss counters either.
        assert cache.stats.accesses == 3

    @pytest.mark.parametrize(
        "cache_class", [SetAssociativeCache, ReferenceSetAssociativeCache]
    )
    def test_probe_touch_refreshes_lru(self, cache_class):
        cache = cache_class(1, 2)
        cache.access(1)
        cache.access(2)
        assert cache.probe(1, touch=True)  # 1 becomes MRU
        cache.access(3)  # evicts 2
        assert cache.contains(1)
        assert not cache.contains(2)

    def test_invalidate(self):
        cache = SetAssociativeCache(1, 2)
        cache.access(5)
        assert cache.invalidate(5)
        assert not cache.contains(5)
        assert not cache.invalidate(5)

    def test_invalidate_all(self):
        cache = SetAssociativeCache(2, 2)
        for addr in range(4):
            cache.access(addr)
        dropped = cache.invalidate_all()
        assert dropped == 4
        assert cache.resident_lines == 0

    def test_stats_reset(self):
        cache = SetAssociativeCache(1, 1)
        cache.access(1)
        cache.stats.reset()
        assert cache.stats.accesses == 0

    def test_hit_rate(self):
        cache = SetAssociativeCache(1, 4)
        cache.access(1)
        cache.access(1)
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_hit_rate_empty(self):
        assert SetAssociativeCache(1, 1).stats.hit_rate == 0.0


class TestResize:
    def test_resize_same_size_noop(self):
        cache = SetAssociativeCache(4, 2)
        cache.access(1)
        assert cache.resize_sets(4) == 0
        assert cache.contains(1)

    def test_grow_preserves_lines_that_remap(self):
        cache = SetAssociativeCache(1, 4)
        for addr in range(4):
            cache.access(addr)
        lost = cache.resize_sets(2)
        assert lost == 0
        assert cache.resident_lines == 4
        for addr in range(4):
            assert cache.contains(addr)

    def test_shrink_drops_overflow(self):
        cache = SetAssociativeCache(4, 2)
        for addr in range(8):
            cache.access(addr)
        lost = cache.resize_sets(1)
        assert lost == 6  # one 2-way set holds only 2 lines
        assert cache.resident_lines == 2

    def test_resize_validation(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(2, 2).resize_sets(0)

    def test_resize_preserves_recency_preference(self):
        """Most-recently-used lines survive a shrink."""
        cache = SetAssociativeCache(2, 2)
        for addr in [0, 2, 4, 6]:  # all even -> set 0 under 2 sets? no: 0,2,4,6 % 2 = 0
            cache.access(addr)
        # Set 0 holds [4, 6] (0, 2 evicted). Now shrink to 1 set.
        cache.resize_sets(1)
        assert cache.contains(4) or cache.contains(6)


class TestGenericPolicies:
    def test_explicit_lru_matches_fast_path(self):
        fast = SetAssociativeCache(2, 2)
        slow = SetAssociativeCache(2, 2, policy=LRUPolicy())
        pattern = [1, 2, 3, 1, 4, 2, 5, 1, 3]
        assert [fast.access(a) for a in pattern] == [
            slow.access(a) for a in pattern
        ]

    def test_fifo_differs_from_lru_on_reorder(self):
        """FIFO evicts first-inserted even if recently hit."""
        fifo = SetAssociativeCache(1, 2, policy=FIFOPolicy())
        fifo.access(1)
        fifo.access(2)
        fifo.access(1)  # hit, but does not refresh FIFO order
        fifo.access(3)  # evicts 1 (first in)
        assert not fifo.contains(1)
        assert fifo.contains(2)


class TestAccessRun:
    @pytest.mark.parametrize(
        "cache_class", [SetAssociativeCache, ReferenceSetAssociativeCache]
    )
    def test_run_matches_scalar_accesses(self, cache_class):
        addrs = np.array([1, 2, 3, 1, 4, 2, 5, 1, 3, 3], dtype=np.int64)
        batched = cache_class(2, 2)
        scalar = cache_class(2, 2)
        hits, evictions = batched.access_run(addrs)
        expected = [scalar.access(int(a)) for a in addrs]
        assert hits.tolist() == expected
        assert evictions == scalar.stats.evictions
        assert batched.stats == scalar.stats
        assert batched.resident_addresses() == scalar.resident_addresses()

    def test_run_returns_eviction_count(self):
        cache = SetAssociativeCache(1, 2)
        hits, evictions = cache.access_run(np.array([1, 2, 3, 4], dtype=np.int64))
        assert hits.tolist() == [False] * 4
        assert evictions == 2
        assert cache.stats.evictions == 2

    def test_run_with_generic_policy(self):
        fifo = SetAssociativeCache(1, 2, policy=FIFOPolicy())
        hits, evictions = fifo.access_run(np.array([1, 2, 1, 3], dtype=np.int64))
        assert hits.tolist() == [False, False, True, False]
        assert evictions == 1
        assert not fifo.contains(1)  # FIFO evicts first-in despite the hit


class TestResidentCounter:
    """The incremental resident-lines counter (satellite perf fix)."""

    @settings(max_examples=30, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["access", "invalidate", "resize", "flush"]),
                      st.integers(0, 30)),
            min_size=1,
            max_size=200,
        )
    )
    def test_counter_matches_recount_after_random_ops(self, ops):
        cache = SetAssociativeCache(4, 2)
        for op, value in ops:
            if op == "access":
                cache.access(value)
            elif op == "invalidate":
                cache.invalidate(value)
            elif op == "resize":
                cache.resize_sets(value % 6 + 1)
            else:
                cache.invalidate_all()
            assert cache.resident_lines == len(cache.resident_addresses())


@settings(max_examples=30, deadline=None)
@given(
    num_sets=st.sampled_from([1, 2, 4]),
    associativity=st.sampled_from([1, 2, 4]),
    addresses=st.lists(st.integers(0, 40), min_size=1, max_size=300),
)
def test_lru_matches_reference_model(num_sets, associativity, addresses):
    cache = SetAssociativeCache(num_sets, associativity)
    reference = ReferenceLRUCache(num_sets, associativity)
    for addr in addresses:
        assert cache.access(addr) == reference.access(addr)


@settings(max_examples=20, deadline=None)
@given(addresses=st.lists(st.integers(0, 30), min_size=1, max_size=200))
def test_bigger_cache_never_fewer_hits_fully_associative(addresses):
    """LRU stack inclusion: hits(capacity) is monotone for FA caches."""
    small = SetAssociativeCache(1, 4)
    big = SetAssociativeCache(1, 8)
    for addr in addresses:
        small.access(addr)
        big.access(addr)
    assert big.stats.hits >= small.stats.hits
