"""Property tests on the memory hierarchy's structural invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ArchConfig
from repro.sim.hierarchy import DomainMemory, MemoryLevel
from repro.sim.partition import PartitionedLLC


def make_memory(arch=None):
    arch = arch or ArchConfig.tiny(num_cores=1)
    llc = PartitionedLLC(
        arch.llc_lines,
        arch.llc_associativity,
        arch.num_cores,
        arch.default_partition_lines,
    )
    return DomainMemory(arch, llc.view(0)), arch


@settings(max_examples=30, deadline=None)
@given(addresses=st.lists(st.integers(0, 200), min_size=1, max_size=300))
def test_latency_always_a_known_level(addresses):
    memory, arch = make_memory()
    valid = {arch.l1_latency, arch.llc_latency, arch.dram_latency}
    for addr in addresses:
        assert memory.access(addr) in valid


@settings(max_examples=30, deadline=None)
@given(addresses=st.lists(st.integers(0, 200), min_size=1, max_size=300))
def test_immediate_rereference_hits_l1(addresses):
    memory, arch = make_memory()
    for addr in addresses:
        memory.access(addr)
        assert memory.access(addr) == arch.l1_latency


@settings(max_examples=20, deadline=None)
@given(addresses=st.lists(st.integers(0, 100), min_size=1, max_size=300))
def test_level_counts_sum_to_accesses(addresses):
    memory, _ = make_memory()
    for addr in addresses:
        memory.access(addr)
    assert sum(memory.level_counts.values()) == len(addresses)


@settings(max_examples=20, deadline=None)
@given(
    addresses=st.lists(st.integers(0, 60), min_size=10, max_size=300),
    seed=st.integers(0, 2**31 - 1),
)
def test_annotation_flag_never_changes_latencies(addresses, seed):
    """Annotations hide accesses from the monitor, never from the caches."""
    rng = np.random.default_rng(seed)
    flags = rng.random(len(addresses)) < 0.5
    plain, _ = make_memory()
    flagged, _ = make_memory()
    for addr, flag in zip(addresses, flags):
        latency_plain = plain.access(addr, metric_excluded=False)
        latency_flagged = flagged.access(addr, metric_excluded=bool(flag))
        assert latency_plain == latency_flagged


@settings(max_examples=20, deadline=None)
@given(addresses=st.lists(st.integers(0, 500), min_size=1, max_size=200))
def test_dram_count_equals_llc_misses(addresses):
    memory, _ = make_memory()
    for addr in addresses:
        memory.access(addr)
    llc_view = memory.llc_view
    stats = llc_view._llc.stats_of(0)  # noqa: SLF001 - test introspection
    assert memory.level_counts[MemoryLevel.DRAM] == stats.misses
