"""Tests for declarative scenario specs (`repro.registry.scenario`).

The load-bearing property is the acceptance criterion: a spec compiles
to exactly the campaign cells the hand-wired `run_mix_grid` path
submits — same cache keys, same order, bit-identical results — so a
scenario file and a Python call are interchangeable consumers of one
result cache.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.harness.exec import ExecutionEngine, ResultCache, cell_key
from repro.harness.experiment import run_custom_mix, run_mix_grid
from repro.harness.runconfig import PROFILES, TEST
from repro.registry import SchemeSelection
from repro.registry.scenario import (
    ScenarioSpec,
    SweepAxis,
    _fallback_parse_toml,
    compile_scenario,
    load_scenario,
    parse_scenario,
    parse_toml,
    run_scenario,
)

try:
    import tomllib
except ImportError:  # pragma: no cover - 3.10
    tomllib = None


REFERENCE_TOML = """\
# full-surface exercise of the supported subset
[scenario]
name = "ref"            # trailing comment with 'quotes'
profile = "test"
mixes = [1, 2]
schemes = ["static", "untangle"]
campaign = "custom-tag"

[scenario.profile_overrides]
cooldown = 1_000
max_cycles = 50000

[[scenario.scheme]]
name = "threshold"
alias = "thr-tight"

[scenario.scheme.params]
expand_fraction = 0.8
footprint_window = 5000

[[scenario.sweep]]
field = "quantum"
values = [250, 500]

[[scenario.workloads]]
label = "pair"
pairs = [["gcc_0", "RSA-2048"], ["xz_0", "SHA-256"]]
"""


class TestTomlParsing:
    def test_fallback_matches_tomllib(self):
        if tomllib is None:
            pytest.skip("tomllib unavailable; fallback is the only parser")
        assert _fallback_parse_toml(REFERENCE_TOML) == tomllib.loads(
            REFERENCE_TOML
        )

    def test_fallback_value_types(self):
        data = _fallback_parse_toml(
            "[t]\n"
            "s = 'x'\n"
            "i = 1_000\n"
            "f = 2.5\n"
            "b = true\n"
            "a = [1, [2, 3], 'four']\n"
        )
        assert data == {
            "t": {
                "s": "x",
                "i": 1000,
                "f": 2.5,
                "b": True,
                "a": [1, [2, 3], "four"],
            }
        }

    @pytest.mark.parametrize(
        "text",
        [
            "[unclosed",
            "[[unclosed",
            "[t]\nkey\n",
            "[t]\nkey = \n",
            "[t]\nkey = 'unterminated\n",
            "[t]\nkey = [1, 2\n",
            "[t]\nkey = what\n",
            "[t]\nkey = 1 trailing\n",
        ],
    )
    def test_fallback_rejects_malformed_lines(self, text):
        with pytest.raises(ConfigurationError):
            _fallback_parse_toml(text)

    def test_parse_toml_reports_source_on_bad_toml(self):
        with pytest.raises(ConfigurationError, match="spec.toml"):
            parse_toml("=[=", source="spec.toml")


class TestParseScenario:
    def base(self, **overrides):
        data = {
            "scenario": {
                "name": "t",
                "profile": "test",
                "mixes": [1],
                "schemes": ["static"],
                **overrides,
            }
        }
        return data

    def test_minimal_spec(self):
        spec = parse_scenario(self.base())
        assert spec.name == "t"
        assert spec.mix_ids == (1,)
        assert [s.run_key for s in spec.schemes] == ["static"]

    def test_missing_scenario_table(self):
        with pytest.raises(ConfigurationError, match="top-level"):
            parse_scenario({"name": "t"})

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown key"):
            parse_scenario(self.base(shcemes=["static"]))

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown profile"):
            parse_scenario(self.base(profile="gigantic"))

    def test_unknown_profile_override_rejected(self):
        with pytest.raises(ConfigurationError, match="profile field"):
            parse_scenario(self.base(profile_overrides={"kooldown": 1}))

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scheme"):
            parse_scenario(self.base(schemes=["nosuch"]))

    def test_bad_scheme_params_rejected(self):
        with pytest.raises(ConfigurationError, match="no parameter"):
            parse_scenario(
                self.base(
                    schemes=[{"name": "threshold", "params": {"nope": 1}}]
                )
            )

    def test_duplicate_run_key_needs_alias(self):
        with pytest.raises(ConfigurationError, match="alias"):
            parse_scenario(
                self.base(
                    schemes=[
                        "threshold",
                        {
                            "name": "threshold",
                            "params": {"footprint_window": 500},
                        },
                    ]
                )
            )

    def test_alias_disambiguates(self):
        spec = parse_scenario(
            self.base(
                schemes=[
                    "threshold",
                    {
                        "name": "threshold",
                        "alias": "thr-small",
                        "params": {"footprint_window": 500},
                    },
                ]
            )
        )
        assert [s.run_key for s in spec.schemes] == [
            "threshold",
            "thr-small",
        ]

    def test_empty_schemes_default_to_campaign_set(self):
        spec = parse_scenario(self.base(schemes=[]))
        assert "untangle" in [s.name for s in spec.schemes]

    def test_needs_mixes_or_workloads(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            parse_scenario(self.base(mixes=[]))

    def test_bad_sweep_field_rejected(self):
        with pytest.raises(ConfigurationError, match="not a profile field"):
            parse_scenario(
                self.base(sweep=[{"field": "nope", "values": [1]}])
            )

    def test_non_default_channel_model_rejected_with_guidance(self):
        with pytest.raises(ConfigurationError, match="unknown channel-model"):
            parse_scenario(self.base(channel_model="nosuch"))

    def test_workload_pairs_validated(self):
        with pytest.raises(ConfigurationError, match="spec, crypto"):
            parse_scenario(
                self.base(workloads=[{"pairs": [["gcc_0"]]}])
            )


class TestLoadScenario:
    def test_toml_and_json_agree(self, tmp_path):
        toml_path = tmp_path / "s.toml"
        toml_path.write_text(
            "[scenario]\n"
            'name = "t"\n'
            'profile = "test"\n'
            "mixes = [1]\n"
            'schemes = ["static"]\n'
        )
        json_path = tmp_path / "s.json"
        json_path.write_text(
            json.dumps(
                {
                    "scenario": {
                        "name": "t",
                        "profile": "test",
                        "mixes": [1],
                        "schemes": ["static"],
                    }
                }
            )
        )
        assert load_scenario(toml_path) == load_scenario(json_path)

    def test_unsupported_suffix(self, tmp_path):
        path = tmp_path / "s.yaml"
        path.write_text("scenario:\n")
        with pytest.raises(ConfigurationError, match="unsupported"):
            load_scenario(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_scenario(tmp_path / "absent.toml")


class TestCompile:
    def test_default_campaign_derives_from_name(self):
        spec = ScenarioSpec(
            name="x",
            profile="test",
            mix_ids=(1,),
            schemes=(SchemeSelection(name="static"),),
        )
        compiled = compile_scenario(spec)
        assert [p.campaign for p in compiled.points] == ["scenario[x]"]

    def test_sweep_cross_product_labels_and_campaigns(self):
        spec = ScenarioSpec(
            name="x",
            profile="test",
            mix_ids=(1,),
            schemes=(SchemeSelection(name="static"),),
            sweep=(
                SweepAxis("cooldown", (250, 500)),
                SweepAxis("quantum", (100,)),
            ),
        )
        compiled = compile_scenario(spec)
        assert [p.label for p in compiled.points] == [
            "cooldown=250,quantum=100",
            "cooldown=500,quantum=100",
        ]
        assert compiled.points[0].campaign == (
            "scenario[x]/cooldown=250,quantum=100"
        )
        assert compiled.points[0].profile.cooldown == 250
        assert compiled.points[1].profile.cooldown == 500

    def test_base_profile_applies_only_without_pin(self):
        pinned = ScenarioSpec(
            name="x",
            profile="test",
            mix_ids=(1,),
            schemes=(SchemeSelection(name="static"),),
        )
        unpinned = ScenarioSpec(
            name="x",
            mix_ids=(1,),
            schemes=(SchemeSelection(name="static"),),
        )
        base = PROFILES["bench"]
        assert (
            compile_scenario(pinned, base_profile=base).points[0].profile
            == TEST
        )
        assert (
            compile_scenario(unpinned, base_profile=base).points[0].profile
            == base
        )

    def test_profile_overrides_applied(self):
        spec = ScenarioSpec(
            name="x",
            profile="test",
            profile_overrides=(("cooldown", 123),),
            mix_ids=(1,),
            schemes=(SchemeSelection(name="static"),),
        )
        assert compile_scenario(spec).points[0].profile.cooldown == 123


class TestBitIdentityWithRunMixGrid:
    """The acceptance criterion, end to end at CI scale."""

    SPEC_TOML = """\
[scenario]
name = "accept"
profile = "test"
mixes = [1]
schemes = ["static", "threshold"]
campaign = "mix-grid[1]"
"""

    def test_cells_match_run_mix_grid_cells(self):
        from repro.harness.exec import MixSchemeCell
        from repro.workloads.mixes import get_mix

        spec = parse_scenario(parse_toml(self.SPEC_TOML))
        compiled = compile_scenario(spec)
        expected = [
            MixSchemeCell(
                pairs=tuple(get_mix(1)), scheme=scheme, profile=TEST
            )
            for scheme in ("static", "threshold")
        ]
        assert [cell_key(c) for c in compiled.cells()] == [
            cell_key(c) for c in expected
        ]

    def test_results_and_cache_interchange(self, tmp_path):
        spec = parse_scenario(parse_toml(self.SPEC_TOML))
        engine = ExecutionEngine(cache=ResultCache(tmp_path / "cache"))
        scenario_result = run_scenario(spec, engine=engine)

        # The hand-wired path over the same engine must be served
        # entirely from cache: identical cell keys, zero re-simulation.
        engine2 = ExecutionEngine(cache=ResultCache(tmp_path / "cache"))
        grid = run_mix_grid(
            (1,),
            TEST,
            ("static", "threshold"),
            engine=engine2,
        )
        snap = engine2.telemetry.snapshot()
        assert snap["computed"] == 0
        assert snap["hit"] == snap["total"] > 0

        mix_result = scenario_result.points[0].results[1]
        assert mix_result.runs == grid[1].runs
        assert mix_result.labels == grid[1].labels


class TestRunScenario:
    def test_custom_workloads_and_sweep(self):
        spec = ScenarioSpec(
            name="tiny",
            profile="test",
            custom_mixes=(
                ("pairset", (("gcc_0", "RSA-2048"),)),
            ),
            schemes=(SchemeSelection(name="static"),),
            sweep=(SweepAxis("quantum", (250, 500)),),
        )
        result = run_scenario(spec)
        assert len(result.points) == 2
        for point_result in result.points:
            mix = point_result.results["pairset"]
            assert set(mix.runs) == {"static"}
            assert mix.labels == ["gcc_0+RSA-2048"]

    def test_custom_mix_matches_run_custom_mix(self):
        pairs = [("gcc_0", "RSA-2048")]
        spec = ScenarioSpec(
            name="tiny",
            profile="test",
            custom_mixes=((None, tuple(pairs)),),
            schemes=(SchemeSelection(name="static"),),
        )
        via_scenario = run_scenario(spec).points[0].results[None]
        direct = run_custom_mix(pairs, TEST, ("static",))
        assert via_scenario.runs == direct.runs
