"""Tests for the plugin registry (`repro.registry`).

The registry is the single source of scheme/monitor/channel/workload
names: `make_scheme`, the CLI `--schemes` choices, scenario specs, and
the conformance kit all re-derive from it, so these tests pin the
lookup contract (names in registration order, loud unknown-name
errors, typed parameter validation) and the extension channels
(temporary registrations, entry-point plugins, the drift detector).
"""

from __future__ import annotations

import pytest

import repro.registry.core as registry_core
from repro.errors import ConfigurationError
from repro.harness.experiment import SCHEME_NAMES, make_scheme, run_mix
from repro.harness.runconfig import TEST
from repro.registry import (
    REGISTRY,
    ParamSpec,
    Registration,
    SchemeSelection,
    canonical_params,
    create_scheme,
    default_campaign_schemes,
    scheme_names,
    validate_schemes,
)
from repro.registry.core import unregistered_scheme_classes
from repro.schemes.base import BaseScheme
from repro.schemes.static import StaticScheme

BUILTINS = (
    "static",
    "time",
    "untangle",
    "untangle-unopt",
    "shared",
    "threshold",
    "threshold-tiered",
)


class TestLookup:
    def test_builtin_schemes_in_registration_order(self):
        assert scheme_names() == BUILTINS

    def test_harness_scheme_names_rederive_from_registry(self):
        assert tuple(SCHEME_NAMES) == scheme_names()

    def test_campaign_defaults_are_the_paper_columns(self):
        defaults = default_campaign_schemes()
        assert set(defaults) <= set(BUILTINS)
        assert "static" in defaults and "untangle" in defaults

    def test_unknown_name_names_the_alternatives(self):
        with pytest.raises(ConfigurationError, match="registered: static"):
            REGISTRY.get("scheme", "nosuch")

    def test_validate_schemes_passes_known_and_rejects_unknown(self):
        assert validate_schemes(["static", "time"]) == ("static", "time")
        with pytest.raises(ConfigurationError, match="unknown scheme"):
            validate_schemes(["static", "nosuch"])

    def test_other_kinds_registered(self):
        assert "umon" in REGISTRY.names("monitor")
        assert "default" in REGISTRY.names("channel-model")
        assert "paper-mix" in REGISTRY.names("workload")


class TestParamValidation:
    def test_unknown_parameter_rejected(self):
        with pytest.raises(ConfigurationError, match="no parameter"):
            create_scheme("threshold", TEST, 2, params={"nope": 1})

    def test_wrong_type_rejected(self):
        with pytest.raises(ConfigurationError, match="expects int"):
            create_scheme(
                "threshold", TEST, 2, params={"footprint_window": "big"}
            )

    def test_bool_is_not_an_int(self):
        # bool subclasses int; an int-typed parameter must still reject
        # it — `footprint_window = true` in a spec is always a mistake.
        with pytest.raises(ConfigurationError, match="got bool"):
            create_scheme(
                "threshold", TEST, 2, params={"footprint_window": True}
            )

    def test_valid_override_reaches_the_factory(self):
        scheme = create_scheme(
            "threshold", TEST, 2, params={"footprint_window": 500}
        )
        assert scheme._footprint_window == 500

    def test_tiered_preset_validated(self):
        with pytest.raises(ConfigurationError, match="expects str"):
            create_scheme("threshold-tiered", TEST, 2, params={"tiers": 3})

    def test_make_scheme_resolves_through_registry(self):
        assert isinstance(make_scheme("static", TEST, 2), StaticScheme)
        with pytest.raises(ConfigurationError, match="unknown scheme"):
            make_scheme("nosuch", TEST, 2)


class TestGridValidation:
    def test_unknown_scheme_fails_before_any_cell_runs(self):
        with pytest.raises(ConfigurationError, match="unknown scheme"):
            run_mix(1, TEST, ("static", "nosuch"))

    def test_bad_override_fails_before_any_cell_runs(self):
        selection = SchemeSelection(
            name="threshold", params=canonical_params({"nope": 1})
        )
        with pytest.raises(ConfigurationError, match="no parameter"):
            run_mix(1, TEST, (selection,))


class TestTemporaryRegistration:
    def test_scoped_registration_appears_and_restores(self):
        registration = Registration(
            kind="scheme",
            name="tmp-scheme",
            factory=lambda profile, n: StaticScheme(profile.arch(n)),
        )
        assert "tmp-scheme" not in scheme_names()
        with REGISTRY.temporary(registration):
            assert "tmp-scheme" in scheme_names()
            assert REGISTRY.get("scheme", "tmp-scheme") is registration
        assert "tmp-scheme" not in scheme_names()

    def test_temporary_shadowing_restores_the_builtin(self):
        original = REGISTRY.get("scheme", "static")
        shadow = Registration(
            kind="scheme", name="static", factory=lambda *a: None
        )
        with REGISTRY.temporary(shadow):
            assert REGISTRY.get("scheme", "static") is shadow
        assert REGISTRY.get("scheme", "static") is original

    def test_duplicate_registration_without_replace_rejected(self):
        clone = Registration(
            kind="scheme", name="static", factory=lambda *a: None
        )
        with pytest.raises(ConfigurationError, match="already registered"):
            REGISTRY.register(clone)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown registration"):
            Registration(kind="gizmo", name="x", factory=lambda: None)


class _FakeEntryPoint:
    def __init__(self, name, loaded):
        self.name = name
        self.value = f"fake:{name}"
        self._loaded = loaded

    def load(self):
        if isinstance(self._loaded, Exception):
            raise self._loaded
        return self._loaded


class TestEntryPointPlugins:
    def test_plugin_callable_registers(self, monkeypatch):
        def plugin(registry):
            registry.register(
                Registration(
                    kind="scheme",
                    name="plugged",
                    factory=lambda profile, n: StaticScheme(profile.arch(n)),
                )
            )

        fresh = registry_core.Registry()
        monkeypatch.setattr(
            registry_core,
            "entry_points",
            lambda group: [_FakeEntryPoint("good", plugin)],
        )
        assert "plugged" in fresh.names("scheme")
        assert fresh.plugin_errors == []

    def test_broken_plugin_is_recorded_not_raised(self, monkeypatch):
        fresh = registry_core.Registry()
        monkeypatch.setattr(
            registry_core,
            "entry_points",
            lambda group: [
                _FakeEntryPoint("bad", RuntimeError("import exploded"))
            ],
        )
        # Lookup still works; the failure is visible, not fatal.
        assert fresh.names("scheme") == ()
        assert len(fresh.plugin_errors) == 1
        assert "import exploded" in fresh.plugin_errors[0]


class TestDriftDetector:
    def test_builtins_are_fully_covered(self):
        assert unregistered_scheme_classes() == []

    def test_uncovered_class_is_reported(self):
        # Deregister every registration producing ThresholdScheme; the
        # importable class is now invisible to campaigns — exactly what
        # the detector must flag.
        removed = {}
        for name in ("threshold", "threshold-tiered"):
            removed[name] = REGISTRY.get("scheme", name)
            REGISTRY.unregister("scheme", name)
        try:
            assert (
                "repro.schemes.threshold.ThresholdScheme"
                in unregistered_scheme_classes()
            )
        finally:
            for registration in removed.values():
                REGISTRY.register(registration)
        assert unregistered_scheme_classes() == []

    def test_detector_sees_concrete_subclasses_only(self):
        # The abstract base itself is never demanded.
        assert BaseScheme.__name__ not in unregistered_scheme_classes()
