"""Tests for the scheme conformance kit (`repro.registry.conformance`).

The kit is itself a test harness, so these tests check the harness:
passing schemes pass, deliberately broken schemes fail with the right
check named, skips are not failures, and the secret-swap check catches
the exact leak class it was built for (a monitor fed through
secret-warmed live-L1 state — the bug that motivated the shadow
monitor filter in `repro.sim.hierarchy`).
"""

from __future__ import annotations

import pytest

from repro.core.principles import (
    PrincipleViolation,
    require_progress_based_schedule,
    require_timing_independent_metric,
)
from repro.harness.runconfig import TEST
from repro.registry import REGISTRY
from repro.registry.conformance import (
    QUICK_PAIRS,
    SECRETS,
    ConformanceCheck,
    ConformanceReport,
    _check_action_leakage,
    _check_principles,
    _victim_action_sequence,
    check_registration_drift,
    run_all,
    run_scheme_conformance,
)


class TestReportModel:
    def test_ok_requires_no_failures(self):
        report = ConformanceReport(scheme="x", profile_name="test")
        report.checks.append(ConformanceCheck("a", "passed"))
        report.checks.append(ConformanceCheck("b", "skipped", "why"))
        assert report.ok
        report.checks.append(ConformanceCheck("c", "failed", "boom"))
        assert not report.ok

    def test_check_lookup(self):
        report = ConformanceReport(scheme="x", profile_name="test")
        report.checks.append(ConformanceCheck("a", "passed", "d"))
        assert report.check("a").detail == "d"
        with pytest.raises(Exception, match="no conformance check"):
            report.check("zzz")


class TestPrincipleMessages:
    """Satellite regression: structural non-conformance (no attribute)
    is reported distinctly from a declared `False`."""

    def test_missing_attribute_is_structural(self):
        with pytest.raises(PrincipleViolation, match="never declares"):
            require_timing_independent_metric(object())
        with pytest.raises(PrincipleViolation, match="never declares"):
            require_progress_based_schedule(object())

    def test_declared_false_is_timing_dependence(self):
        class TimingMetric:
            timing_independent = False

        class TimeSchedule:
            progress_based = False

        with pytest.raises(
            PrincipleViolation, match="timing_independent=False"
        ):
            require_timing_independent_metric(TimingMetric())
        with pytest.raises(
            PrincipleViolation, match="progress_based=False"
        ):
            require_progress_based_schedule(TimeSchedule())


class TestChecks:
    def test_principles_fail_for_a_time_based_scheme(self):
        # `time` never claims compliance (the battery skips it), but
        # pointed at the checker directly its schedule must be rejected
        # — proving the check has teeth.
        registration = REGISTRY.get("scheme", "time")
        with pytest.raises(PrincipleViolation):
            _check_principles(registration, TEST, QUICK_PAIRS[:1])

    def test_principles_pass_for_untangle(self):
        registration = REGISTRY.get("scheme", "untangle")
        detail = _check_principles(registration, TEST, QUICK_PAIRS[:1])
        assert "P1-certified" in detail and "P2-certified" in detail

    def test_action_leakage_detects_the_time_scheme(self):
        registration = REGISTRY.get("scheme", "time")
        with pytest.raises(AssertionError, match="leaks through actions"):
            _check_action_leakage(registration, TEST, QUICK_PAIRS[:1])


class TestShadowMonitorFilterRegression:
    """Regression for the P1 bug the kit found: the monitor used to be
    filtered by the *live* L1, which secret-annotated accesses still
    warm — so the secret chose which public accesses the monitor saw,
    and untangle's resize sequence diverged across secret swaps."""

    @pytest.mark.parametrize("spec,crypto", [("gcc_0", "RSA-2048")])
    def test_untangle_actions_invariant_under_secret_swap(
        self, spec, crypto
    ):
        sequences = {
            secret: _victim_action_sequence(
                "untangle", TEST, spec, crypto, secret
            )
            for secret in SECRETS
        }
        base, swapped = sequences.values()
        assert len(base) > 0, "vacuous: no resize decisions at all"
        assert base == swapped


class TestBattery:
    def test_static_quick_battery_passes(self):
        report = run_scheme_conformance("static", TEST, quick=True)
        assert report.ok
        # Baselines skip the compliance-claim checks, not fail them.
        assert report.check("principles").status == "skipped"
        assert report.check("action-leakage").status == "skipped"
        assert report.check("kernel-identity").status == "passed"
        assert report.check("lane-stacking").status == "passed"
        assert report.check("store-tokens").status == "passed"
        assert report.check("telemetry").status == "passed"

    def test_unknown_scheme_rejected(self):
        with pytest.raises(Exception, match="unknown scheme"):
            run_scheme_conformance("nosuch", TEST)

    def test_run_all_scopes_to_named_schemes(self):
        reports = run_all(["static"], TEST, quick=True, drift=False)
        assert [r.scheme for r in reports] == ["static"]

    def test_run_all_drift_report_leads(self):
        reports = run_all(["static"], TEST, quick=True, drift=True)
        assert reports[0].scheme == "<registry>"
        assert reports[0].check("registration-drift").status == "passed"

    def test_drift_detector_passes_on_the_builtin_set(self):
        report = check_registration_drift()
        assert report.ok
