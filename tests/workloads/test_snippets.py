"""Tests for the Figure 1 leak-demo snippets."""

import numpy as np
import pytest

from repro.workloads import snippets


class TestFigure1a:
    def test_secret_controls_traversal_presence(self):
        with_traversal = snippets.figure_1a(True, array_lines=32, padding=10)
        without = snippets.figure_1a(False, array_lines=32, padding=10)
        assert with_traversal.memory_instruction_count > 0
        assert without.memory_instruction_count == 0

    def test_annotated_traversal_is_fully_excluded(self):
        stream = snippets.figure_1a(True, annotated=True, array_lines=32, padding=10)
        mem_mask = stream.addresses >= 0
        assert stream.annotations.metric_excluded[mem_mask].all()
        assert stream.annotations.progress_excluded[mem_mask].all()

    def test_annotated_public_progress_independent_of_secret(self):
        """The annotation makes public progress equal for both secrets."""
        a = snippets.figure_1a(True, annotated=True, array_lines=32, padding=10)
        b = snippets.figure_1a(False, annotated=True, array_lines=32, padding=10)
        assert a.public_per_pass == b.public_per_pass

    def test_unannotated_leaks_through_length(self):
        a = snippets.figure_1a(True, annotated=False, array_lines=32, padding=10)
        b = snippets.figure_1a(False, annotated=False, array_lines=32, padding=10)
        assert a.public_per_pass != b.public_per_pass


class TestFigure1b:
    def test_same_instructions_different_footprint(self):
        wide = snippets.figure_1b(1, array_lines=32, padding=10)
        narrow = snippets.figure_1b(0, array_lines=32, padding=10)
        assert wide.length == narrow.length
        wide_lines = np.unique(wide.addresses[wide.addresses >= 0])
        narrow_lines = np.unique(narrow.addresses[narrow.addresses >= 0])
        assert len(wide_lines) > len(narrow_lines)

    def test_annotated_excludes_metric_not_progress(self):
        stream = snippets.figure_1b(1, annotated=True, array_lines=16, padding=4)
        mem_mask = stream.addresses >= 0
        assert stream.annotations.metric_excluded[mem_mask].all()
        assert not stream.annotations.progress_excluded.any()

    def test_progress_same_across_secrets(self):
        a = snippets.figure_1b(0, array_lines=16, padding=4)
        b = snippets.figure_1b(7, array_lines=16, padding=4)
        assert a.public_per_pass == b.public_per_pass


class TestFigure1c:
    def test_secret_adds_stall_only(self):
        slow = snippets.figure_1c(True, array_lines=16, padding=4)
        fast = snippets.figure_1c(False, array_lines=16, padding=4)
        # Identical architectural stream...
        assert np.array_equal(slow.addresses, fast.addresses)
        assert slow.public_per_pass == fast.public_per_pass
        # ...different stalls.
        assert slow.stall_cycles.sum() > fast.stall_cycles.sum()

    def test_traversal_is_public(self):
        stream = snippets.figure_1c(True, array_lines=16, padding=4)
        mem_mask = stream.addresses >= 0
        assert not stream.annotations.metric_excluded[mem_mask].any()

    def test_sleep_instruction_annotated(self):
        stream = snippets.figure_1c(True, annotated=True, array_lines=16, padding=4)
        sleep_index = 4  # right after the leading padding
        assert stream.annotations.metric_excluded[sleep_index]
        assert stream.annotations.progress_excluded[sleep_index]
