"""Tests for workload composition (SPEC + crypto)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.workload import WorkloadScale, build_workload


@pytest.fixture(scope="module")
def built():
    return build_workload("gcc_0", "AES-128", WorkloadScale.test(), seed=3)


class TestWorkloadScale:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadScale(spec_instructions=0)
        with pytest.raises(ConfigurationError):
            WorkloadScale(warmup_fraction=1.0)

    def test_paper_scale_ratios(self):
        scale = WorkloadScale.paper()
        assert scale.spec_instructions == 500_000_000
        assert scale.spec_instructions // scale.crypto_instructions == 10
        assert scale.spec_chunk // scale.crypto_chunk == 10

    def test_scaled_default_keeps_ratios(self):
        scale = WorkloadScale()
        assert scale.spec_instructions // scale.crypto_instructions == 10


class TestComposition:
    def test_label(self, built):
        assert built.label == "gcc_0+AES-128"

    def test_length_close_to_requested(self, built):
        scale = WorkloadScale.test()
        requested = scale.spec_instructions + scale.crypto_instructions
        assert built.stream.length == pytest.approx(requested, rel=0.15)

    def test_crypto_fraction_annotated(self, built):
        """~1/11 of instructions are crypto, all of them secret-annotated."""
        summary = built.stream.annotations.summary()
        fraction = summary.metric_exclusion_fraction
        assert 0.03 <= fraction <= 0.25

    def test_alternating_chunks(self, built):
        """Secret-annotated regions alternate with public ones."""
        excluded = built.stream.annotations.metric_excluded
        transitions = int(np.sum(excluded[1:] != excluded[:-1]))
        assert transitions >= 4  # several crypto/spec boundaries

    def test_deterministic(self):
        a = build_workload("xz_1", "SHA-256", WorkloadScale.test(), seed=9)
        b = build_workload("xz_1", "SHA-256", WorkloadScale.test(), seed=9)
        assert np.array_equal(a.stream.addresses, b.stream.addresses)

    def test_seed_changes_content(self):
        a = build_workload("xz_1", "SHA-256", WorkloadScale.test(), seed=1)
        b = build_workload("xz_1", "SHA-256", WorkloadScale.test(), seed=2)
        assert not np.array_equal(a.stream.addresses, b.stream.addresses)

    def test_core_config_from_spec_model(self, built):
        assert built.core_config.mlp == built.spec.mlp
        assert built.core_config.slice_instructions == built.stream.length

    def test_secret_adds_stalls_for_timing_sensitive_crypto(self):
        plain = build_workload(
            "gcc_0", "RSA-2048", WorkloadScale.test(), seed=3, secret=0
        )
        secret = build_workload(
            "gcc_0", "RSA-2048", WorkloadScale.test(), seed=3, secret=0b111
        )
        assert plain.stream.stall_cycles is None
        assert secret.stream.stall_cycles is not None
        assert secret.stream.stall_cycles.sum() > 0

    def test_secret_does_not_change_public_part(self):
        """The SPEC (public) accesses are identical across secrets."""
        a = build_workload("gcc_0", "RSA-2048", WorkloadScale.test(), seed=3, secret=0)
        b = build_workload(
            "gcc_0", "RSA-2048", WorkloadScale.test(), seed=3, secret=0xFF
        )
        public_a = a.stream.addresses[~a.stream.annotations.metric_excluded]
        public_b = b.stream.addresses[~b.stream.annotations.metric_excluded]
        assert np.array_equal(public_a, public_b)
