"""Tests for the 16 paper mixes — including demand fidelity."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.crypto import CRYPTO_BENCHMARKS
from repro.workloads.mixes import (
    PAPER_MIXES,
    get_mix,
    mix_demand_mb,
    mix_labels,
    mix_sensitive_count,
)
from repro.workloads.spec import SPEC_BENCHMARKS

#: The total-LLC-demand numbers printed in the paper's figure titles.
PAPER_DEMANDS_MB = {
    1: 14.6, 2: 23.5, 3: 33.4, 4: 39.0, 5: 13.1, 6: 19.9, 7: 28.6, 8: 13.4,
    9: 19.4, 10: 32.6, 11: 12.6, 12: 24.4, 13: 30.2, 14: 12.4, 15: 25.6,
    16: 32.4,
}

#: Sensitive-benchmark counts from the figure titles.
PAPER_SENSITIVE_COUNTS = {
    1: 2, 2: 4, 3: 6, 4: 8, 5: 2, 6: 4, 7: 6, 8: 2, 9: 4, 10: 6, 11: 2,
    12: 4, 13: 6, 14: 2, 15: 4, 16: 6,
}


class TestStructure:
    def test_sixteen_mixes(self):
        assert set(PAPER_MIXES) == set(range(1, 17))

    def test_each_mix_has_eight_workloads(self):
        for mix_id in PAPER_MIXES:
            assert len(get_mix(mix_id)) == 8

    def test_each_mix_uses_all_eight_crypto_benchmarks(self):
        for mix_id in PAPER_MIXES:
            cryptos = {crypto for _, crypto in get_mix(mix_id)}
            assert cryptos == set(CRYPTO_BENCHMARKS)

    def test_all_spec_names_valid(self):
        for mix_id in PAPER_MIXES:
            for spec, _ in get_mix(mix_id):
                assert spec in SPEC_BENCHMARKS

    def test_no_duplicate_spec_in_a_mix(self):
        for mix_id in PAPER_MIXES:
            specs = [spec for spec, _ in get_mix(mix_id)]
            assert len(set(specs)) == 8

    def test_every_spec_benchmark_appears_somewhere(self):
        """The paper's mixes jointly cover all 36 benchmarks."""
        used = {spec for mix in PAPER_MIXES.values() for spec, _ in mix}
        assert used == set(SPEC_BENCHMARKS)

    def test_unknown_mix_rejected(self):
        with pytest.raises(ConfigurationError):
            get_mix(17)

    def test_labels(self):
        labels = mix_labels(1)
        assert labels[0] == "blender_0+AES-128"
        assert len(labels) == 8


class TestPaperFidelity:
    @pytest.mark.parametrize("mix_id", sorted(PAPER_MIXES))
    def test_sensitive_counts_match_paper(self, mix_id):
        assert mix_sensitive_count(mix_id) == PAPER_SENSITIVE_COUNTS[mix_id]

    @pytest.mark.parametrize("mix_id", sorted(PAPER_MIXES))
    def test_demand_within_1mb_of_paper(self, mix_id):
        """The fitted adequate sizes reproduce the published demands."""
        assert mix_demand_mb(mix_id) == pytest.approx(
            PAPER_DEMANDS_MB[mix_id], abs=1.1
        )

    def test_demand_progression_within_family(self):
        """Mixes 1-4 strictly increase demand as sensitives are added."""
        demands = [mix_demand_mb(m) for m in (1, 2, 3, 4)]
        assert demands == sorted(demands)
