"""Tests for the crypto benchmark models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.crypto import CRYPTO_BENCHMARKS, get_crypto_benchmark


class TestCatalog:
    def test_all_eight_table5_benchmarks(self):
        assert set(CRYPTO_BENCHMARKS) == {
            "Chacha20", "AES-128", "AES-256", "SHA-256",
            "RSA-2048", "RSA-4096", "ECDSA", "EdDSA",
        }

    def test_lookup(self):
        assert get_crypto_benchmark("AES-128").name == "AES-128"

    def test_unknown_lookup(self):
        with pytest.raises(ConfigurationError):
            get_crypto_benchmark("DES")

    def test_small_footprints(self):
        """Crypto working sets are tiny relative to any partition."""
        for benchmark in CRYPTO_BENCHMARKS.values():
            assert benchmark.table_lines <= 128


class TestGeneration:
    def test_within_table(self):
        benchmark = get_crypto_benchmark("AES-128")
        out = benchmark.generate_accesses(200, np.random.default_rng(0))
        assert len(np.unique(out)) <= benchmark.table_lines

    def test_secret_zero_matches_default(self):
        benchmark = get_crypto_benchmark("RSA-2048")
        a = benchmark.generate_accesses(100, np.random.default_rng(3), secret=0)
        b = benchmark.generate_accesses(100, np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_secret_changes_footprint_when_sensitive(self):
        benchmark = get_crypto_benchmark("RSA-2048")
        assert benchmark.secret_demand_lines > 0
        zero = benchmark.generate_accesses(500, np.random.default_rng(4), secret=0)
        full = benchmark.generate_accesses(
            500, np.random.default_rng(4), secret=0xFF
        )
        assert len(np.unique(full)) > len(np.unique(zero))

    def test_secret_ignored_when_insensitive(self):
        benchmark = get_crypto_benchmark("SHA-256")
        a = benchmark.generate_accesses(100, np.random.default_rng(5), secret=0)
        b = benchmark.generate_accesses(100, np.random.default_rng(5), secret=0xFF)
        assert np.array_equal(a, b)

    def test_annotations_fully_secret(self):
        benchmark = get_crypto_benchmark("EdDSA")
        annotations = benchmark.annotations_for(10)
        assert annotations.metric_excluded.all()
        assert annotations.progress_excluded.all()
