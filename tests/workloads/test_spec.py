"""Tests for the SPEC17 benchmark models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.spec import (
    LLC_SENSITIVE_NAMES,
    SPEC_BENCHMARKS,
    get_spec_benchmark,
)


class TestCatalog:
    def test_thirty_six_benchmarks(self):
        """The paper simulates all 36 SPEC17 benchmarks."""
        assert len(SPEC_BENCHMARKS) == 36

    def test_exactly_eight_sensitive(self):
        """8 LLC-sensitive, 28 LLC-insensitive (Section 8)."""
        assert len(LLC_SENSITIVE_NAMES) == 8
        assert len(SPEC_BENCHMARKS) - len(LLC_SENSITIVE_NAMES) == 28

    def test_sensitive_set_matches_paper_bold_names(self):
        assert set(LLC_SENSITIVE_NAMES) == {
            "cam4_0", "gcc_2", "gcc_4", "lbm_0",
            "mcf_0", "parest_0", "roms_0", "wrf_0",
        }

    def test_sensitivity_definition(self):
        """Sensitive <=> adequate size above the 2 MB static partition."""
        for benchmark in SPEC_BENCHMARKS.values():
            assert benchmark.llc_sensitive == (benchmark.adequate_mb > 2.0)

    def test_lookup(self):
        assert get_spec_benchmark("gcc_2").name == "gcc_2"

    def test_unknown_lookup(self):
        with pytest.raises(ConfigurationError):
            get_spec_benchmark("nonexistent_0")

    def test_names_match_spec17_inputs(self):
        """Multi-input applications appear with numbered variants."""
        gcc = [n for n in SPEC_BENCHMARKS if n.startswith("gcc_")]
        assert sorted(gcc) == ["gcc_0", "gcc_1", "gcc_2", "gcc_3", "gcc_4"]
        assert "bwaves_3" in SPEC_BENCHMARKS
        assert "x264_2" in SPEC_BENCHMARKS


class TestGeneration:
    def test_deterministic(self):
        benchmark = get_spec_benchmark("mcf_0")
        a = benchmark.generate_accesses(500, np.random.default_rng(7))
        b = benchmark.generate_accesses(500, np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_requested_count(self):
        benchmark = get_spec_benchmark("xz_0")
        out = benchmark.generate_accesses(123, np.random.default_rng(0))
        assert len(out) == 123

    def test_working_set_scales(self):
        benchmark = get_spec_benchmark("lbm_0")
        assert benchmark.working_set_lines(128) == 2 * benchmark.working_set_lines(64)

    def test_sensitive_footprint_larger_than_insensitive(self):
        rng = np.random.default_rng(1)
        big = get_spec_benchmark("lbm_0").generate_accesses(3000, rng)
        rng = np.random.default_rng(1)
        small = get_spec_benchmark("imagick_0").generate_accesses(3000, rng)
        assert len(np.unique(big)) > len(np.unique(small))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            type(get_spec_benchmark("gcc_0"))(
                name="bad", adequate_mb=-1, mem_fraction=0.5, mlp=2.0,
                scan_weight=1, random_weight=0, geometric_weight=0,
                hot_weight=0, stream_weight=0,
            )
