"""Tests for the access-pattern primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.workloads import patterns


class TestSequentialScan:
    def test_cycles_through_working_set(self):
        scan = patterns.sequential_scan(4, 10)
        assert scan.tolist() == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]

    def test_base_offset(self):
        scan = patterns.sequential_scan(4, 4, base=100)
        assert scan.min() == 100

    def test_start_continues_phase(self):
        scan = patterns.sequential_scan(4, 4, start=2)
        assert scan.tolist() == [2, 3, 0, 1]


class TestUniformRandom:
    def test_within_working_set(self, rng):
        out = patterns.uniform_random(8, 100, rng, base=50)
        assert out.min() >= 50
        assert out.max() < 58

    def test_deterministic_given_rng(self):
        a = patterns.uniform_random(8, 20, np.random.default_rng(1))
        b = patterns.uniform_random(8, 20, np.random.default_rng(1))
        assert np.array_equal(a, b)


class TestGeometricReuse:
    def test_within_working_set(self, rng):
        out = patterns.geometric_reuse(16, 200, rng, mean_distance=4.0)
        assert out.min() >= 0
        assert out.max() < 16

    def test_short_distances_dominate(self, rng):
        out = patterns.geometric_reuse(1000, 5000, rng, mean_distance=3.0)
        # Most accesses reference something within ~3x the mean.
        cursor = np.arange(5000)
        distances = (cursor - out) % 1000
        assert np.median(distances) <= 9

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            patterns.geometric_reuse(16, 10, rng, mean_distance=0.5)


class TestStridedStream:
    def test_never_reuses(self):
        out = patterns.strided_stream(100)
        assert len(set(out.tolist())) == 100


class TestHotSet:
    def test_confined_to_hot_lines(self, rng):
        out = patterns.hot_set(4, 50, rng)
        assert set(out.tolist()) <= {0, 1, 2, 3}


class TestInterleave:
    def test_respects_weights_roughly(self, rng):
        a = np.zeros(1000, dtype=np.int64)
        b = np.ones(1000, dtype=np.int64)
        out = patterns.interleave([(a, 0.8), (b, 0.2)], 2000, rng)
        ones = int(out.sum())
        assert 250 <= ones <= 550  # ~400 expected

    def test_preserves_component_order(self, rng):
        ordered = np.arange(100, dtype=np.int64)
        out = patterns.interleave([(ordered, 1.0)], 100, rng)
        assert np.array_equal(out, ordered)

    def test_empty_components_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            patterns.interleave([], 10, rng)

    def test_zero_weights_rejected(self, rng):
        a = np.zeros(4, dtype=np.int64)
        with pytest.raises(ConfigurationError):
            patterns.interleave([(a, 0.0)], 10, rng)

    def test_component_shorter_than_output_wraps(self, rng):
        a = np.arange(3, dtype=np.int64)
        out = patterns.interleave([(a, 1.0)], 10, rng)
        assert np.array_equal(out, np.arange(10) % 3)


class TestPlaceMemoryInstructions:
    def test_fraction_half(self):
        accesses = np.arange(4, dtype=np.int64)
        stream = patterns.place_memory_instructions(accesses, 0.5)
        assert len(stream) == 8
        assert (stream >= 0).sum() == 4

    def test_fraction_one(self):
        accesses = np.arange(4, dtype=np.int64)
        stream = patterns.place_memory_instructions(accesses, 1.0)
        assert np.array_equal(stream, accesses)

    def test_memory_order_preserved(self):
        accesses = np.array([7, 3, 9], dtype=np.int64)
        stream = patterns.place_memory_instructions(accesses, 0.25)
        assert stream[stream >= 0].tolist() == [7, 3, 9]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            patterns.place_memory_instructions(np.arange(4), 0.0)
        with pytest.raises(ConfigurationError):
            patterns.place_memory_instructions(np.array([], dtype=np.int64), 0.5)


@settings(max_examples=20, deadline=None)
@given(
    fraction=st.sampled_from([0.1, 0.2, 0.25, 0.5, 1.0]),
    count=st.integers(1, 200),
)
def test_memory_fraction_approximately_respected(fraction, count):
    accesses = np.arange(count, dtype=np.int64)
    stream = patterns.place_memory_instructions(accesses, fraction)
    achieved = (stream >= 0).sum() / len(stream)
    assert achieved == pytest.approx(fraction, rel=0.25)
