"""Tests for the precomputed rate tables (Sections 5.3.4 and 7)."""

import pytest

from repro.core.rates import RmaxTable, worst_case_table
from repro.errors import ChannelModelError


class TestRmaxTable:
    def test_rates_decrease_with_maintains(self, small_rate_table):
        """More consecutive Maintains -> longer effective cooldown -> lower rate."""
        rates = [small_rate_table.rate(m) for m in range(small_rate_table.capacity)]
        assert all(
            later <= earlier + 1e-12 for earlier, later in zip(rates, rates[1:])
        )

    def test_effective_cooldown_scaling(self, small_rate_table):
        for m in range(small_rate_table.capacity):
            entry = small_rate_table.entry(m)
            assert entry.effective_cooldown >= (m + 1) * small_rate_table.cooldown or (
                entry.effective_cooldown == (entry.maintains + 1) * small_rate_table.cooldown
            )

    def test_clamps_beyond_capacity(self, small_rate_table):
        last = small_rate_table.rate(small_rate_table.capacity - 1)
        assert small_rate_table.rate(small_rate_table.capacity + 100) == last

    def test_negative_maintains_rejected(self, small_rate_table):
        with pytest.raises(ChannelModelError):
            small_rate_table.rate(-1)

    def test_bits_for_interval_linear(self, small_rate_table):
        bits_one = small_rate_table.bits_for_interval(0, 100)
        bits_two = small_rate_table.bits_for_interval(0, 200)
        assert bits_two == pytest.approx(2 * bits_one)

    def test_bits_for_negative_interval_rejected(self, small_rate_table):
        with pytest.raises(ChannelModelError):
            small_rate_table.bits_for_interval(0, -1)

    def test_capacity_validation(self, small_channel_model):
        with pytest.raises(ChannelModelError):
            RmaxTable(small_channel_model, capacity=0)

    def test_level_rounding_is_conservative(self, small_channel_model):
        """Between materialized levels, the rate rounds to the HIGHER rate."""
        table = RmaxTable(small_channel_model, capacity=20, solver_iterations=100)
        levels = table.levels
        # Pick a maintain count strictly between two levels, if any gap exists.
        gaps = [
            (a, b) for a, b in zip(levels, levels[1:]) if b - a > 1
        ]
        if gaps:
            low, high = gaps[0]
            between = low + 1
            assert table.rate(between) == table.rate(low)
            assert table.rate(between) >= table.rate(high) - 1e-12

    def test_entries_materializes_all_levels(self, small_channel_model):
        table = RmaxTable(small_channel_model, capacity=4, solver_iterations=100)
        entries = table.entries()
        assert [e.maintains for e in entries] == table.levels

    def test_len(self, small_rate_table):
        assert len(small_rate_table) == small_rate_table.capacity


class TestWorstCaseTable:
    def test_single_entry(self, small_channel_model):
        table = worst_case_table(small_channel_model, solver_iterations=100)
        assert table.capacity == 1
        # Every maintain count charges at the level-0 (highest) rate.
        assert table.rate(5) == table.rate(0)

    def test_worst_case_rate_at_least_optimized(
        self, small_channel_model, small_rate_table
    ):
        worst = worst_case_table(small_channel_model, solver_iterations=150)
        assert worst.rate(3) >= small_rate_table.rate(3) - 1e-9
