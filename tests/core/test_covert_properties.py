"""Property tests on covert-channel model invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.covert import CovertChannelModel, uniform_delay


def random_model(rng: np.random.Generator) -> CovertChannelModel:
    resolution = int(rng.choice([2, 4, 8]))
    cooldown = resolution * int(rng.integers(4, 10))
    horizon = cooldown * int(rng.integers(2, 4))
    return CovertChannelModel(
        cooldown=cooldown,
        resolution=resolution,
        max_duration=horizon,
        delay=uniform_delay(cooldown, resolution),
    )


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_output_distribution_is_probability_vector(seed):
    rng = np.random.default_rng(seed)
    model = random_model(rng)
    p = rng.dirichlet(np.ones(model.num_inputs))
    p_y = model.output_distribution(p)
    assert np.all(p_y >= -1e-12)
    assert p_y.sum() == pytest.approx(1.0)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_per_transmission_bits_bounded_by_input_entropy(seed):
    """I(X;Y) per transmission can never exceed H(X); the H(Y)-H(delta)
    relaxation respects the same cap up to the delta-vs-Delta slack."""
    rng = np.random.default_rng(seed)
    model = random_model(rng)
    p = rng.dirichlet(np.ones(model.num_inputs))
    from repro.info.entropy import entropy_bits_vec

    h_x = entropy_bits_vec(p)
    # H(Y) <= H(X) + H(Delta); H(Delta) <= 2 H(delta) for the difference
    # of two IID delays, so the relaxed bound obeys:
    assert model.per_transmission_bits(p) <= h_x + model.delay_entropy_bits() + 1e-9


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_mixing_inputs_never_lowers_output_entropy_below_components(seed):
    """Concavity of H(Y) in p(x): H(Y(mix)) >= mix of H(Y(components))."""
    rng = np.random.default_rng(seed)
    model = random_model(rng)
    p1 = rng.dirichlet(np.ones(model.num_inputs))
    p2 = rng.dirichlet(np.ones(model.num_inputs))
    lam = float(rng.random())
    mixed = lam * p1 + (1 - lam) * p2
    h_mixed = model.output_entropy_bits(mixed)
    h_components = lam * model.output_entropy_bits(p1) + (
        1 - lam
    ) * model.output_entropy_bits(p2)
    assert h_mixed >= h_components - 1e-9


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), scale=st.sampled_from([2, 3, 5]))
def test_rate_scales_inversely_with_time_units(seed, scale):
    """Scaling all time quantities by k divides the rate by k exactly."""
    rng = np.random.default_rng(seed)
    base = random_model(rng)
    scaled = CovertChannelModel(
        cooldown=base.cooldown * scale,
        resolution=base.resolution * scale,
        max_duration=base.max_duration * scale,
        delay=uniform_delay(base.cooldown * scale, base.resolution * scale),
    )
    assert scaled.num_inputs == base.num_inputs
    p = rng.dirichlet(np.ones(base.num_inputs))
    assert scaled.rate(p) == pytest.approx(base.rate(p) / scale)
