"""Tests for the Dinkelbach solver and rate certification (Appendix A)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.covert import CovertChannelModel, no_delay, uniform_delay
from repro.core.dinkelbach import (
    certified_rate_upper_bound,
    maximize_concave_on_simplex,
    solve_fractional,
    solve_rmax,
)
from repro.errors import OptimizationError
from repro.info.entropy import entropy_bits_vec, entropy_gradient_vec


class TestSimplexMaximizer:
    def test_maximizes_entropy_to_uniform(self):
        """max H(p) over the simplex is the uniform distribution."""
        n = 8
        p, value = maximize_concave_on_simplex(
            entropy_bits_vec, entropy_gradient_vec, n, iterations=500
        )
        assert value == pytest.approx(3.0, abs=1e-3)
        assert np.allclose(p, 1.0 / n, atol=1e-2)

    def test_linear_objective_concentrates_mass(self):
        weights = np.array([1.0, 5.0, 2.0])
        p, value = maximize_concave_on_simplex(
            lambda p: float(weights @ p),
            lambda p: weights,
            3,
            iterations=600,
        )
        assert value == pytest.approx(5.0, abs=1e-2)
        assert p[1] > 0.99

    def test_dimension_one(self):
        p, value = maximize_concave_on_simplex(
            lambda p: 7.0, lambda p: np.zeros(1), 1
        )
        assert p.tolist() == [1.0]
        assert value == 7.0

    def test_bad_dimension_rejected(self):
        with pytest.raises(OptimizationError):
            maximize_concave_on_simplex(lambda p: 0.0, lambda p: p, 0)


class TestSolveFractional:
    def test_linear_ratio_has_vertex_optimum(self):
        """max (a.p)/(b.p) over the simplex = max_i a_i/b_i."""
        a = np.array([1.0, 4.0, 2.0])
        b = np.array([1.0, 2.0, 1.0])
        result = solve_fractional(
            lambda p: float(a @ p),
            lambda p: float(b @ p),
            lambda p: a,
            lambda p: b,
            3,
            inner_iterations=600,
        )
        assert result.optimum == pytest.approx(2.0, abs=1e-2)
        assert result.converged

    def test_q_history_monotone_nondecreasing(self):
        a = np.array([3.0, 1.0])
        b = np.array([2.0, 1.0])
        result = solve_fractional(
            lambda p: float(a @ p),
            lambda p: float(b @ p),
            lambda p: a,
            lambda p: b,
            2,
        )
        history = result.q_history
        assert all(
            later >= earlier - 1e-9
            for earlier, later in zip(history, history[1:])
        )

    def test_upper_bound_at_least_optimum(self):
        a = np.array([1.0, 2.0])
        b = np.array([1.0, 1.0])
        result = solve_fractional(
            lambda p: float(a @ p),
            lambda p: float(b @ p),
            lambda p: a,
            lambda p: b,
            2,
        )
        assert result.upper_bound >= result.optimum - 1e-9


class TestCertifiedBound:
    def test_certificate_dominates_all_inputs(self, small_channel_model):
        """The dual bound holds for EVERY input distribution (soundness)."""
        m = small_channel_model
        transition = m.transition_matrix
        durations = m.durations.astype(float)
        h_delta = m.delay_entropy_bits()
        reference = m.output_distribution(m.uniform_input())
        bound = certified_rate_upper_bound(transition, durations, h_delta, reference)
        rng = np.random.default_rng(7)
        for _ in range(50):
            p = rng.dirichlet(np.ones(m.num_inputs))
            assert m.rate(p) <= bound + 1e-9

    def test_certificate_tight_at_optimum(self, small_channel_model):
        result = solve_rmax(small_channel_model, inner_iterations=400)
        # Certified bound within a few percent of the achieved rate.
        assert result.rate_upper_bound <= result.rate * 1.15
        assert result.rate_upper_bound >= result.rate - 1e-12


class TestSolveRmax:
    def test_beats_uniform_input(self, small_channel_model):
        result = solve_rmax(small_channel_model, inner_iterations=300)
        uniform_rate = small_channel_model.rate(
            small_channel_model.uniform_input()
        )
        assert result.rate >= uniform_rate - 1e-9

    def test_result_fields_consistent(self, small_channel_model):
        result = solve_rmax(small_channel_model, inner_iterations=300)
        assert result.rate == pytest.approx(
            result.bits_per_transmission / result.average_transmission_time
        )
        assert result.bound_verified
        assert result.input_distribution.sum() == pytest.approx(1.0)

    def test_noiseless_channel_rate_exceeds_noisy(self):
        """Removing the random delay (Mechanism 2) raises the max rate."""
        noisy = CovertChannelModel(
            cooldown=32, resolution=4, max_duration=96, delay=uniform_delay(32, 4)
        )
        clean = CovertChannelModel(
            cooldown=32, resolution=4, max_duration=96, delay=no_delay()
        )
        r_noisy = solve_rmax(noisy, inner_iterations=300)
        r_clean = solve_rmax(clean, inner_iterations=300)
        assert r_clean.rate > r_noisy.rate

    def test_longer_cooldown_lowers_rate(self, small_channel_model):
        """Mechanism 1: increasing T_c reduces the max rate."""
        short = solve_rmax(small_channel_model, inner_iterations=300)
        stretched = solve_rmax(
            small_channel_model.with_cooldown(64), inner_iterations=300
        )
        assert stretched.rate < short.rate

    def test_deterministic_given_seed(self, small_channel_model):
        a = solve_rmax(small_channel_model, inner_iterations=200, seed=3)
        b = solve_rmax(small_channel_model, inner_iterations=200, seed=3)
        assert a.rate == b.rate
        assert np.array_equal(a.input_distribution, b.input_distribution)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_optimum_dominates_random_inputs(seed, small_channel_model):
    """No random strategy beats the solved maximum (up to solver slack)."""
    result = solve_rmax(small_channel_model, inner_iterations=300)
    p = np.random.default_rng(seed).dirichlet(np.ones(small_channel_model.num_inputs))
    assert small_channel_model.rate(p) <= result.rate_upper_bound + 1e-9
