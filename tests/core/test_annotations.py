"""Tests for secret-dependence annotations."""

import numpy as np
import pytest

from repro.core.annotations import (
    AnnotationKind,
    AnnotationVector,
    concatenate_annotations,
)
from repro.errors import AnnotationError


class TestConstruction:
    def test_public(self):
        v = AnnotationVector.public(5)
        assert len(v) == 5
        assert not v.metric_excluded.any()
        assert not v.progress_excluded.any()

    def test_fully_secret(self):
        v = AnnotationVector.fully_secret(4)
        assert v.metric_excluded.all()
        assert v.progress_excluded.all()
        assert v.public_progress_count() == 0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(AnnotationError):
            AnnotationVector(np.zeros(2, dtype=bool), np.zeros(3, dtype=bool))

    def test_two_dimensional_rejected(self):
        with pytest.raises(AnnotationError):
            AnnotationVector(
                np.zeros((2, 2), dtype=bool), np.zeros((2, 2), dtype=bool)
            )


class TestFromKinds:
    def test_resource_use_excludes_metric_only(self):
        v = AnnotationVector.from_kinds([AnnotationKind.SECRET_RESOURCE_USE])
        assert v.metric_excluded[0]
        assert not v.progress_excluded[0]

    def test_secret_control_excludes_both(self):
        """Control-dependence taints resource use AND progress counting."""
        v = AnnotationVector.from_kinds([AnnotationKind.SECRET_CONTROL])
        assert v.metric_excluded[0]
        assert v.progress_excluded[0]

    def test_timing_dependent_excludes_both(self):
        """Section 6.1: timing-dependent regions are excluded from both."""
        v = AnnotationVector.from_kinds([AnnotationKind.TIMING_DEPENDENT])
        assert v.metric_excluded[0]
        assert v.progress_excluded[0]

    def test_none_excludes_nothing(self):
        v = AnnotationVector.from_kinds([AnnotationKind.NONE])
        assert not v.metric_excluded[0]
        assert not v.progress_excluded[0]

    def test_combined_flags(self):
        kind = AnnotationKind.SECRET_RESOURCE_USE | AnnotationKind.SECRET_CONTROL
        v = AnnotationVector.from_kinds([kind])
        assert v.metric_excluded[0] and v.progress_excluded[0]


class TestOperations:
    def test_concatenate(self):
        v = AnnotationVector.public(2).concatenate(AnnotationVector.fully_secret(3))
        assert len(v) == 5
        assert v.public_progress_count() == 2

    def test_slice(self):
        v = AnnotationVector.public(2).concatenate(AnnotationVector.fully_secret(2))
        tail = v.slice(2, 4)
        assert tail.metric_excluded.all()

    def test_concatenate_annotations_helper(self):
        v = concatenate_annotations(
            [AnnotationVector.public(1), AnnotationVector.fully_secret(1)]
        )
        assert len(v) == 2

    def test_concatenate_empty_rejected(self):
        with pytest.raises(AnnotationError):
            concatenate_annotations([])

    def test_summary(self):
        v = AnnotationVector.public(3).concatenate(AnnotationVector.fully_secret(1))
        summary = v.summary()
        assert summary.total_instructions == 4
        assert summary.excluded_from_metric == 1
        assert summary.metric_exclusion_fraction == pytest.approx(0.25)
        assert summary.progress_exclusion_fraction == pytest.approx(0.25)

    def test_empty_summary_fractions(self):
        # Zero-length vectors are legal intermediate states.
        v = AnnotationVector(np.zeros(0, dtype=bool), np.zeros(0, dtype=bool))
        assert v.summary().metric_exclusion_fraction == 0.0
