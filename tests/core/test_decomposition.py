"""Tests for the leakage decomposition (Section 5.1, Figure 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.actions import maintain, resize
from repro.core.decomposition import (
    action_leakage,
    decompose,
    scheduling_leakage,
    total_leakage,
)
from repro.core.trace import ResizingTrace, TraceEnsemble


def figure3_ensemble() -> TraceEnsemble:
    """The worked example of Figure 3."""
    s1_fast = ResizingTrace.from_pairs([(resize(1, 2), 100), (maintain(2), 200)])
    s1_slow = ResizingTrace.from_pairs([(resize(1, 2), 150), (maintain(2), 300)])
    s2 = ResizingTrace.from_pairs([(maintain(1), 120), (maintain(1), 240)])
    return TraceEnsemble({s1_fast: 0.25, s1_slow: 0.25, s2: 0.5})


class TestFigure3:
    """The paper's numbers, exactly."""

    def test_action_leakage_is_one_bit(self):
        assert action_leakage(figure3_ensemble()) == pytest.approx(1.0)

    def test_scheduling_leakage_is_half_bit(self):
        assert scheduling_leakage(figure3_ensemble()) == pytest.approx(0.5)

    def test_total_leakage_is_one_and_a_half_bits(self):
        assert total_leakage(figure3_ensemble()) == pytest.approx(1.5)

    def test_decompose_consistency(self):
        breakdown = decompose(figure3_ensemble())
        assert breakdown.action_bits == pytest.approx(1.0)
        assert breakdown.scheduling_bits == pytest.approx(0.5)
        assert breakdown.total_bits == pytest.approx(1.5)
        assert breakdown.chain_rule_residual < 1e-12

    def test_per_sequence_timing_bits(self):
        breakdown = decompose(figure3_ensemble())
        assert breakdown.per_sequence_timing_bits[(2, 2)] == pytest.approx(1.0)
        assert breakdown.per_sequence_timing_bits[(1, 1)] == pytest.approx(0.0)


class TestDegenerateCases:
    def test_single_trace_leaks_nothing(self):
        trace = ResizingTrace.from_pairs([(resize(1, 2), 10)])
        ensemble = TraceEnsemble({trace: 1.0})
        breakdown = decompose(ensemble)
        assert breakdown.total_bits == pytest.approx(0.0, abs=1e-12)

    def test_pure_action_leakage(self):
        """Same timing, different actions: all leakage is action leakage."""
        a = ResizingTrace.from_pairs([(resize(1, 2), 10)])
        b = ResizingTrace.from_pairs([(resize(1, 4), 10)])
        breakdown = decompose(TraceEnsemble.equally_likely([a, b]))
        assert breakdown.action_bits == pytest.approx(1.0)
        assert breakdown.scheduling_bits == pytest.approx(0.0, abs=1e-12)

    def test_pure_scheduling_leakage(self):
        """Same actions, different timing: all leakage is scheduling."""
        a = ResizingTrace.from_pairs([(resize(1, 2), 10)])
        b = ResizingTrace.from_pairs([(resize(1, 2), 20)])
        breakdown = decompose(TraceEnsemble.equally_likely([a, b]))
        assert breakdown.action_bits == pytest.approx(0.0, abs=1e-12)
        assert breakdown.scheduling_bits == pytest.approx(1.0)

    def test_fixed_schedule_has_zero_scheduling_leakage(self):
        """A fixed-time schedule (Section 5.3): |T[s]| = 1 for every s."""
        traces = [
            ResizingTrace.from_pairs([(resize(1, size), 100), (maintain(size), 200)])
            for size in (2, 4, 8)
        ]
        breakdown = decompose(TraceEnsemble.equally_likely(traces))
        assert breakdown.scheduling_bits == pytest.approx(0.0, abs=1e-12)
        assert breakdown.action_bits == pytest.approx(np.log2(3))


@settings(max_examples=40)
@given(
    num_sequences=st.integers(1, 4),
    timings_per_sequence=st.integers(1, 4),
    seed=st.integers(0, 2**31 - 1),
)
def test_chain_rule_holds_on_random_ensembles(
    num_sequences, timings_per_sequence, seed
):
    """H(S, T_S) = H(S) + E[H(T_s | S=s)] for arbitrary ensembles (Eq 5.6)."""
    rng = np.random.default_rng(seed)
    traces = {}
    sizes = [2, 4, 8, 16]
    for s in range(num_sequences):
        action = resize(1, sizes[s])
        for t in range(timings_per_sequence):
            timestamp = int(10 + 10 * s + rng.integers(0, 5) + 100 * t)
            trace = ResizingTrace.from_pairs([(action, timestamp)])
            traces[trace] = traces.get(trace, 0.0) + float(rng.random()) + 0.01
    total = sum(traces.values())
    ensemble = TraceEnsemble({k: v / total for k, v in traces.items()})
    breakdown = decompose(ensemble)
    assert breakdown.chain_rule_residual < 1e-9
    assert breakdown.total_bits >= breakdown.action_bits - 1e-9
