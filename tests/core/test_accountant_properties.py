"""Property-based tests of the leakage accountant's soundness invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accountant import LeakageAccountant


@settings(max_examples=40, deadline=None)
@given(
    pattern=st.lists(st.booleans(), min_size=1, max_size=40),
    gaps=st.lists(st.integers(1, 6), min_size=40, max_size=40),
)
def test_total_equals_sum_of_charges(pattern, gaps, small_rate_table):
    accountant = LeakageAccountant(small_rate_table)
    cooldown = small_rate_table.cooldown
    t = 0
    charged = 0.0
    for visible, gap in zip(pattern, gaps):
        t += gap * cooldown
        charged += accountant.on_assessment(t, visible)
    assert accountant.total_bits == pytest.approx(charged)


@settings(max_examples=40, deadline=None)
@given(
    pattern=st.lists(st.booleans(), min_size=1, max_size=40),
    gaps=st.lists(st.integers(1, 6), min_size=40, max_size=40),
)
def test_charges_nonnegative_and_bounded_by_worst_case(
    pattern, gaps, small_rate_table
):
    """0 <= each charge, and total <= rate(0) * elapsed time.

    The level-0 rate is the highest in the table, so charging the whole
    timeline at it is an upper bound on any Maintain-aware charging.
    """
    accountant = LeakageAccountant(small_rate_table)
    cooldown = small_rate_table.cooldown
    t = 0
    for visible, gap in zip(pattern, gaps):
        t += gap * cooldown
        bits = accountant.on_assessment(t, visible)
        assert bits >= -1e-12
    worst = small_rate_table.rate(0) * t
    assert accountant.total_bits <= worst + 1e-9


@settings(max_examples=30, deadline=None)
@given(
    visibles=st.lists(st.booleans(), min_size=2, max_size=30),
)
def test_more_maintains_never_leak_more(visibles, small_rate_table):
    """Flipping any visible action to Maintain cannot increase the total."""
    cooldown = small_rate_table.cooldown

    def total_for(pattern):
        accountant = LeakageAccountant(small_rate_table)
        for i, visible in enumerate(pattern, start=1):
            accountant.on_assessment(i * cooldown, visible)
        return accountant.total_bits

    baseline = total_for(visibles)
    if any(visibles):
        first_visible = visibles.index(True)
        flipped = list(visibles)
        flipped[first_visible] = False
        assert total_for(flipped) <= baseline + 1e-9


@settings(max_examples=30, deadline=None)
@given(
    pattern=st.lists(st.booleans(), min_size=1, max_size=25),
    threshold=st.floats(min_value=0.1, max_value=5.0),
)
def test_threshold_overshoot_bounded_by_one_charge(
    pattern, threshold, small_rate_table
):
    """The total may pass the threshold by at most the final charge."""
    accountant = LeakageAccountant(small_rate_table, threshold_bits=threshold)
    cooldown = small_rate_table.cooldown
    max_charge = 0.0
    for i, wanted in enumerate(pattern, start=1):
        visible = wanted and accountant.resizing_allowed
        bits = accountant.on_assessment(i * cooldown, visible)
        max_charge = max(max_charge, bits)
    assert accountant.total_bits <= threshold + max_charge + 1e-9


@settings(max_examples=25, deadline=None)
@given(
    runs=st.integers(1, 5),
    pattern=st.lists(st.booleans(), min_size=1, max_size=10),
)
def test_replay_total_is_sum_of_run_totals(runs, pattern, small_rate_table):
    accountant = LeakageAccountant(small_rate_table)
    cooldown = small_rate_table.cooldown
    run_totals = []
    for run in range(runs):
        if run > 0:
            accountant.start_new_run()
        before = accountant.total_bits
        for i, visible in enumerate(pattern, start=1):
            accountant.on_assessment(i * cooldown, visible)
        run_totals.append(accountant.total_bits - before)
    assert accountant.total_bits == pytest.approx(sum(run_totals))
