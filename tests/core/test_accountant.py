"""Tests for runtime leakage accounting (Section 7)."""

import math

import pytest

from repro.core.accountant import ConservativeAccountant, LeakageAccountant
from repro.errors import LeakageBudgetExceeded, SimulationError


@pytest.fixture()
def accountant(small_rate_table):
    return LeakageAccountant(small_rate_table)


class TestLeakageAccountant:
    def test_starts_at_zero(self, accountant):
        assert accountant.total_bits == 0.0
        assert accountant.resizing_allowed

    def test_visible_action_charges_rate_times_span(
        self, accountant, small_rate_table
    ):
        cooldown = small_rate_table.cooldown
        bits = accountant.on_assessment(cooldown, visible=True)
        assert bits == pytest.approx(
            small_rate_table.bits_for_interval(0, cooldown)
        )

    def test_timestamps_must_be_nondecreasing(self, accountant):
        accountant.on_assessment(100, visible=True)
        with pytest.raises(SimulationError):
            accountant.on_assessment(50, visible=True)

    def test_maintain_run_counter(self, accountant, small_rate_table):
        cooldown = small_rate_table.cooldown
        accountant.on_assessment(cooldown, visible=False)
        accountant.on_assessment(2 * cooldown, visible=False)
        assert accountant.current_maintain_run == 2
        accountant.on_assessment(3 * cooldown, visible=True)
        assert accountant.current_maintain_run == 0

    def test_maintain_run_total_equals_final_repricing(
        self, accountant, small_rate_table
    ):
        """n Maintains then a visible action: total = rate(n) * (n+1)T_c.

        This is the Section 5.3.4 equivalence: the transmission behaves
        like one with cooldown (n+1) T_c.
        """
        cooldown = small_rate_table.cooldown
        n = 3
        for i in range(n):
            accountant.on_assessment((i + 1) * cooldown, visible=False)
        accountant.on_assessment((n + 1) * cooldown, visible=True)
        expected = small_rate_table.bits_for_interval(n, (n + 1) * cooldown)
        assert accountant.total_bits == pytest.approx(expected)

    def test_maintains_cost_less_per_assessment_than_visible(
        self, small_rate_table
    ):
        cooldown = small_rate_table.cooldown
        all_visible = LeakageAccountant(small_rate_table)
        mostly_maintain = LeakageAccountant(small_rate_table)
        for i in range(1, 7):
            all_visible.on_assessment(i * cooldown, visible=True)
            mostly_maintain.on_assessment(i * cooldown, visible=(i == 6))
        assert mostly_maintain.total_bits < all_visible.total_bits

    def test_charges_never_negative(self, accountant, small_rate_table):
        cooldown = small_rate_table.cooldown
        for i in range(1, 20):
            bits = accountant.on_assessment(i * cooldown, visible=(i % 5 == 0))
            assert bits >= -1e-12

    def test_budget_enforcement(self, small_rate_table):
        accountant = LeakageAccountant(small_rate_table, threshold_bits=1.0)
        cooldown = small_rate_table.cooldown
        t = 0
        while accountant.resizing_allowed:
            t += cooldown
            accountant.on_assessment(t, visible=True)
        assert accountant.budget_exhausted
        assert not accountant.check_resize_allowed()
        with pytest.raises(LeakageBudgetExceeded):
            accountant.check_resize_allowed(strict=True)

    def test_negative_threshold_rejected(self, small_rate_table):
        with pytest.raises(SimulationError):
            LeakageAccountant(small_rate_table, threshold_bits=-1.0)

    def test_replay_carries_leakage_across_runs(self, small_rate_table):
        accountant = LeakageAccountant(small_rate_table, threshold_bits=100.0)
        cooldown = small_rate_table.cooldown
        accountant.on_assessment(cooldown, visible=True)
        first_run = accountant.total_bits
        accountant.start_new_run()
        assert accountant.run_bits == 0.0
        assert accountant.total_bits == pytest.approx(first_run)
        accountant.on_assessment(cooldown, visible=True)
        assert accountant.total_bits == pytest.approx(2 * first_run)

    def test_report(self, accountant, small_rate_table):
        cooldown = small_rate_table.cooldown
        accountant.on_assessment(cooldown, visible=False)
        accountant.on_assessment(2 * cooldown, visible=True)
        report = accountant.report()
        assert report.assessments == 2
        assert report.visible_actions == 1
        assert report.maintain_fraction == pytest.approx(0.5)
        assert report.bits_per_assessment == pytest.approx(
            report.total_bits / 2
        )

    def test_charge_log_records_everything(self, accountant, small_rate_table):
        cooldown = small_rate_table.cooldown
        accountant.on_assessment(cooldown, visible=False)
        accountant.on_assessment(2 * cooldown, visible=True)
        charges = accountant.charges
        assert len(charges) == 2
        assert charges[0].visible is False
        assert charges[1].maintain_run_before == 1

    def test_long_span_uses_lower_rate(self, small_rate_table):
        """A 4-cooldown gap charges at the level-3 rate, not level-0."""
        accountant = LeakageAccountant(small_rate_table)
        cooldown = small_rate_table.cooldown
        bits = accountant.on_assessment(4 * cooldown, visible=True)
        # First assessment uses a default cooldown-interval; the charge is
        # at least the minimum transmission and far below rate0 * 4Tc.
        assert bits <= small_rate_table.bits_for_interval(0, 4 * cooldown)


class TestConservativeAccountant:
    def test_flat_charge(self):
        accountant = ConservativeAccountant(num_actions=9)
        bits = accountant.on_assessment(100, visible=False)
        assert bits == pytest.approx(math.log2(9))
        bits = accountant.on_assessment(200, visible=True)
        assert bits == pytest.approx(math.log2(9))
        assert accountant.total_bits == pytest.approx(2 * math.log2(9))

    def test_budget(self):
        accountant = ConservativeAccountant(num_actions=4, threshold_bits=3.0)
        accountant.on_assessment(1, visible=True)  # 2 bits
        assert accountant.resizing_allowed
        accountant.on_assessment(2, visible=True)  # 4 bits total
        assert accountant.budget_exhausted
        with pytest.raises(LeakageBudgetExceeded):
            accountant.check_resize_allowed(strict=True)

    def test_report(self):
        accountant = ConservativeAccountant(num_actions=2)
        accountant.on_assessment(1, visible=True)
        accountant.on_assessment(2, visible=False)
        report = accountant.report()
        assert report.assessments == 2
        assert report.bits_per_assessment == pytest.approx(1.0)
        assert report.maintain_fraction == pytest.approx(0.5)

    def test_rejects_empty_alphabet(self):
        with pytest.raises(SimulationError):
            ConservativeAccountant(num_actions=0)
