"""Tests for repro.core.actions."""

import math

import pytest

from repro.core.actions import (
    ActionAlphabet,
    ActionKind,
    ResizingAction,
    action_sequence_key,
    maintain,
    resize,
)
from repro.errors import ConfigurationError


class TestResizingAction:
    def test_expand_kind(self):
        assert resize(2, 4).kind is ActionKind.EXPAND

    def test_shrink_kind(self):
        assert resize(4, 2).kind is ActionKind.SHRINK

    def test_maintain_kind(self):
        assert maintain(4).kind is ActionKind.MAINTAIN

    def test_maintain_is_invisible(self):
        assert not maintain(4).is_visible

    def test_resize_is_visible(self):
        assert resize(2, 4).is_visible
        assert resize(4, 2).is_visible

    def test_non_positive_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            ResizingAction(new_size=0, old_size=1)
        with pytest.raises(ConfigurationError):
            ResizingAction(new_size=1, old_size=-1)

    def test_str_forms(self):
        assert str(maintain(4)) == "Maintain(4)"
        assert "Expand" in str(resize(2, 4))
        assert "Shrink" in str(resize(4, 2))

    def test_ordering_and_hash(self):
        actions = {resize(2, 4), resize(2, 4), maintain(2)}
        assert len(actions) == 2


class TestActionAlphabet:
    def test_paper_alphabet_has_nine_sizes(self):
        alphabet = ActionAlphabet.paper_llc_sizes_bytes()
        assert len(alphabet) == 9

    def test_paper_leakage_is_log2_9(self):
        alphabet = ActionAlphabet.paper_llc_sizes_bytes()
        assert alphabet.conservative_bits_per_assessment() == pytest.approx(
            math.log2(9)
        )

    def test_sizes_sorted_and_deduped(self):
        alphabet = ActionAlphabet([4, 2, 4, 8])
        assert alphabet.sizes == [2, 4, 8]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ActionAlphabet([])

    def test_non_positive_rejected(self):
        with pytest.raises(ConfigurationError):
            ActionAlphabet([0, 2])

    def test_contains_and_bounds(self):
        alphabet = ActionAlphabet([2, 4, 8])
        assert 4 in alphabet
        assert 5 not in alphabet
        assert alphabet.min_size == 2
        assert alphabet.max_size == 8

    def test_clamp(self):
        alphabet = ActionAlphabet([2, 4, 8])
        assert alphabet.clamp(7) == 4
        assert alphabet.clamp(8) == 8
        assert alphabet.clamp(1) == 2

    def test_round_nearest(self):
        alphabet = ActionAlphabet([2, 4, 8])
        assert alphabet.round_nearest(5) == 4
        assert alphabet.round_nearest(7) == 8
        assert alphabet.round_nearest(3) == 2  # tie goes small

    def test_step_toward(self):
        alphabet = ActionAlphabet([2, 4, 8])
        assert alphabet.step_toward(4, 8) == 8
        assert alphabet.step_toward(4, 2) == 2
        assert alphabet.step_toward(4, 4) == 4
        assert alphabet.step_toward(8, 100) == 8

    def test_step_toward_requires_member(self):
        alphabet = ActionAlphabet([2, 4, 8])
        with pytest.raises(ConfigurationError):
            alphabet.step_toward(3, 8)

    def test_iteration(self):
        assert list(ActionAlphabet([2, 4])) == [2, 4]


def test_action_sequence_key():
    actions = [resize(2, 4), maintain(4), resize(4, 2)]
    assert action_sequence_key(actions) == (4, 4, 2)
