"""Tests for repro.core.trace."""

import pytest

from repro.core.actions import maintain, resize
from repro.core.trace import ResizingTrace, TraceEnsemble, TraceEvent
from repro.errors import TraceError


def make_trace(*pairs):
    return ResizingTrace.from_pairs(list(pairs))


class TestTraceEvent:
    def test_negative_timestamp_rejected(self):
        with pytest.raises(TraceError):
            TraceEvent(maintain(2), -1)


class TestResizingTrace:
    def test_strictly_increasing_enforced(self):
        with pytest.raises(TraceError):
            make_trace((maintain(2), 10), (maintain(2), 10))
        with pytest.raises(TraceError):
            make_trace((maintain(2), 10), (maintain(2), 5))

    def test_empty_trace_allowed(self):
        assert len(ResizingTrace()) == 0

    def test_action_and_timing_sequences(self):
        t = make_trace((resize(2, 4), 10), (maintain(4), 20))
        assert t.action_key == (4, 4)
        assert t.timing_sequence == (10, 20)

    def test_visible_view_drops_maintains(self):
        t = make_trace(
            (resize(2, 4), 10), (maintain(4), 20), (resize(4, 2), 30)
        )
        visible = t.visible_view()
        assert len(visible) == 2
        assert visible.timing_sequence == (10, 30)

    def test_inter_event_gaps(self):
        t = make_trace((maintain(2), 10), (maintain(2), 25))
        assert t.inter_event_gaps() == (10, 15)

    def test_maintain_run_lengths(self):
        t = make_trace(
            (maintain(2), 1),
            (maintain(2), 2),
            (resize(2, 4), 3),
            (resize(4, 2), 4),
            (maintain(2), 5),
        )
        # runs before each visible action: 2 maintains, then 0.
        assert t.maintain_run_lengths() == (2, 0)

    def test_iteration(self):
        t = make_trace((maintain(2), 5))
        events = list(t)
        assert events[0].timestamp == 5


class TestTraceEnsemble:
    def make_figure3_ensemble(self):
        t1 = make_trace((resize(1, 2), 100), (maintain(2), 200))
        t1b = make_trace((resize(1, 2), 150), (maintain(2), 300))
        t2 = make_trace((maintain(1), 120), (maintain(1), 240))
        return TraceEnsemble({t1: 0.25, t1b: 0.25, t2: 0.5})

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            TraceEnsemble({})

    def test_equally_likely(self):
        t1 = make_trace((maintain(2), 1))
        t2 = make_trace((maintain(2), 2))
        ensemble = TraceEnsemble.equally_likely([t1, t2])
        assert ensemble.probability(t1) == pytest.approx(0.5)

    def test_equally_likely_empty_rejected(self):
        with pytest.raises(TraceError):
            TraceEnsemble.equally_likely([])

    def test_action_distribution_groups_by_key(self):
        ensemble = self.make_figure3_ensemble()
        actions = ensemble.action_distribution()
        assert len(actions) == 2  # s1 (two timings) collapses to one key
        assert actions.probability((2, 2)) == pytest.approx(0.5)

    def test_timing_conditionals(self):
        ensemble = self.make_figure3_ensemble()
        conditionals = ensemble.timing_conditionals()
        s1 = conditionals[(2, 2)]
        assert s1.probability((100, 200)) == pytest.approx(0.5)
        assert s1.probability((150, 300)) == pytest.approx(0.5)
        s2 = conditionals[(1, 1)]
        assert s2.probability((120, 240)) == pytest.approx(1.0)

    def test_joint_distribution_entropy_matches_trace_entropy(self):
        ensemble = self.make_figure3_ensemble()
        assert ensemble.joint_distribution().entropy_bits() == pytest.approx(
            ensemble.distribution.entropy_bits()
        )

    def test_traces_returns_support(self):
        ensemble = self.make_figure3_ensemble()
        assert len(ensemble.traces()) == 3
