"""Exact verification of Appendix A's bound: I(X^n; Y^n) <= n(H(Y) - H(delta)).

The subtlety the appendix handles: consecutive observations are NOT
independent — ``Y_i = d_{X_i} + delta_i - delta_{i-1}`` shares each
``delta_i`` between ``Y_i`` and ``Y_{i+1}``. Equations A.3-A.9 bound the
joint mutual information anyway:

* ``H(Y^n) <= sum_i H(Y_i) = n H(Y)``  (chain rule + conditioning),
* ``H(Y^n | X^n) = H(delta^n) = n H(delta)``  (delays are IID and
  independent of inputs).

These tests build the *exact* joint distribution of ``(X^n, Y^n)`` for
``n = 2, 3`` over small channels by enumerating inputs and delay
sequences, and verify every step of the chain, for uniform and random
input distributions. This is the kind of check that is infeasible at
evaluation scale but airtight at toy scale.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.covert import CovertChannelModel, uniform_delay
from repro.info.distributions import DiscreteDistribution
from repro.info.entropy import entropy, joint_entropy, mutual_information


def small_channel() -> CovertChannelModel:
    return CovertChannelModel(
        cooldown=4, resolution=1, max_duration=7, delay=uniform_delay(4, 1)
    )


def exact_joint_n_transmissions(
    model: CovertChannelModel, p_x: np.ndarray, n: int
) -> DiscreteDistribution:
    """The exact joint of (x^n, y^n), marginalizing the delay chain.

    Delay ``delta_0`` precedes the first transmission; ``y_i = d_{x_i} +
    delta_{i+1} - delta_i`` with all deltas IID from the model's delay
    distribution.
    """
    delays = [(int(v), model.delay.probability(int(v))) for v in model.delay.support]
    durations = model.durations
    joint: dict[tuple, float] = {}
    for xs in itertools.product(range(model.num_inputs), repeat=n):
        p_inputs = float(np.prod([p_x[x] for x in xs]))
        if p_inputs == 0.0:
            continue
        for delta_seq in itertools.product(delays, repeat=n + 1):
            p_delta = float(np.prod([p for _, p in delta_seq]))
            ys = tuple(
                int(durations[xs[i]]) + delta_seq[i + 1][0] - delta_seq[i][0]
                for i in range(n)
            )
            key = (xs, ys)
            joint[key] = joint.get(key, 0.0) + p_inputs * p_delta
    return DiscreteDistribution(joint)


@pytest.mark.parametrize("n", [1, 2, 3])
def test_bound_holds_for_uniform_inputs(n):
    model = small_channel()
    p_x = model.uniform_input()
    joint = exact_joint_n_transmissions(model, p_x, n)
    information = mutual_information(joint)
    bound = n * model.per_transmission_bits(p_x)
    assert information <= bound + 1e-9


@pytest.mark.parametrize("n", [2, 3])
def test_observations_are_genuinely_correlated(n):
    """H(Y^n) < n H(Y): shared deltas correlate consecutive observations.

    This is why the appendix needs the chain-rule inequality rather than
    simple independence — and why the bound is conservative.
    """
    model = small_channel()
    p_x = model.uniform_input()
    joint = exact_joint_n_transmissions(model, p_x, n)
    y_marginal_joint = joint.map(lambda pair: pair[1])
    h_y_n = entropy(y_marginal_joint)
    h_y_single = model.output_entropy_bits(p_x)
    assert h_y_n < n * h_y_single - 1e-6


def test_conditional_entropy_equals_delay_chain_entropy():
    """H(Y^n | X^n) = H(delta^{n+1} projected) — here checked as A.9's
    consequence: H(Y^n | X^n) is input-independent and equals the entropy
    of the observable delay differences."""
    model = small_channel()
    n = 2
    p_x = model.uniform_input()
    joint = exact_joint_n_transmissions(model, p_x, n)
    x_marginal = joint.map(lambda pair: pair[0])
    h_joint = joint_entropy(joint)
    h_x = entropy(x_marginal)
    h_y_given_x = h_joint - h_x
    # Compare against the entropy of (y1 - d_x1, y2 - d_x2) = the
    # difference process of the delay chain, computed directly.
    delays = [(int(v), model.delay.probability(int(v))) for v in model.delay.support]
    differences: dict[tuple, float] = {}
    for delta_seq in itertools.product(delays, repeat=n + 1):
        p = float(np.prod([pr for _, pr in delta_seq]))
        key = tuple(
            delta_seq[i + 1][0] - delta_seq[i][0] for i in range(n)
        )
        differences[key] = differences.get(key, 0.0) + p
    h_difference_process = DiscreteDistribution(differences).entropy_bits()
    assert h_y_given_x == pytest.approx(h_difference_process, abs=1e-9)
    # And the appendix's A.9 replacement bounds it from below:
    # H(difference process) >= n H(delta) ... actually A.5-A.9 show
    # H(Y^n|X^n) = H(delta^n) = n H(delta) under the appendix's
    # conservative treatment; the exact value here is at least that.
    assert h_difference_process >= n * model.delay_entropy_bits() - 1e-9


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_bound_holds_for_random_inputs(seed):
    model = small_channel()
    p_x = np.random.default_rng(seed).dirichlet(np.ones(model.num_inputs))
    joint = exact_joint_n_transmissions(model, p_x, 2)
    information = mutual_information(joint)
    bound = 2 * model.per_transmission_bits(p_x)
    assert information <= bound + 1e-9


def test_rate_bound_dominates_exact_rate():
    """R'_max certified >= exact I(X^n;Y^n)/(n T_avg) for sampled inputs."""
    from repro.core.dinkelbach import solve_rmax

    model = small_channel()
    solution = solve_rmax(model, inner_iterations=300)
    rng = np.random.default_rng(3)
    for _ in range(5):
        p_x = rng.dirichlet(np.ones(model.num_inputs))
        joint = exact_joint_n_transmissions(model, p_x, 2)
        exact_rate = mutual_information(joint) / (
            2 * model.average_transmission_time(p_x)
        )
        assert exact_rate <= solution.rate_upper_bound + 1e-9
