"""Property tests for the Dinkelbach solver (Appendix A).

Two properties the leakage accounting relies on:

* the dual certificate of :func:`certified_rate_upper_bound` dominates
  the rate achieved by **every** input distribution — it holds for any
  reference output distribution, not just the optimizer's; and
* a solve that exhausts its iteration budget reports
  ``converged=False`` instead of silently returning a value that looks
  certified.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.covert import CovertChannelModel, uniform_delay
from repro.core.dinkelbach import (
    certified_rate_upper_bound,
    solve_fractional,
    solve_rmax,
)
from repro.info.entropy import entropy_bits_vec


def random_channel(rng: np.random.Generator):
    """A random column-stochastic channel with positive durations."""
    n_in = int(rng.integers(2, 6))
    n_out = int(rng.integers(2, 7))
    transition = rng.random((n_out, n_in)) + 1e-3
    transition /= transition.sum(axis=0, keepdims=True)
    durations = rng.uniform(1.0, 5.0, size=n_in)
    delay_entropy = float(rng.uniform(0.0, 0.5))
    return transition, durations, delay_entropy


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_certificate_dominates_every_achievable_rate(seed):
    """``certified_rate_upper_bound`` >= (H(Ap) - H(delta)) / (d.p)
    for random channels, random reference outputs, and random inputs."""
    rng = np.random.default_rng(seed)
    transition, durations, delay_entropy = random_channel(rng)
    n_in = transition.shape[1]
    reference = transition @ rng.dirichlet(np.ones(n_in))
    bound = certified_rate_upper_bound(
        transition, durations, delay_entropy, reference
    )
    for _ in range(10):
        p = rng.dirichlet(np.ones(n_in))
        achieved = (
            float(entropy_bits_vec(transition @ p)) - delay_entropy
        ) / float(durations @ p)
        assert bound >= achieved - 1e-9


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_rmax_bound_dominates_random_strategies(seed):
    """The solver's certified R'_max upper-bounds arbitrary sender
    strategies on a real covert-channel model."""
    rng = np.random.default_rng(seed)
    cooldown = int(rng.integers(2, 5)) * 2
    model = CovertChannelModel(
        cooldown=cooldown,
        resolution=2,
        max_duration=cooldown + 2 * int(rng.integers(1, 4)),
        delay=uniform_delay(cooldown, 2),
    )
    result = solve_rmax(model, inner_iterations=200, seed=seed % 1000)
    transition = model.transition_matrix
    durations = model.durations.astype(np.float64)
    h_delta = model.delay_entropy_bits()
    for _ in range(10):
        p = rng.dirichlet(np.ones(model.num_inputs))
        achieved = (
            float(entropy_bits_vec(transition @ p)) - h_delta
        ) / float(durations @ p)
        assert result.rate_upper_bound >= achieved - 1e-6
    assert result.rate_upper_bound >= result.rate - 1e-12


class TestUnconvergedReporting:
    def test_budget_exhaustion_reports_converged_false(self):
        """An under-budgeted solve must say so, not swallow it."""
        a = np.array([1.0, 4.0, 2.0])
        b = np.array([1.0, 2.0, 1.0])
        result = solve_fractional(
            lambda p: float(a @ p),
            lambda p: float(b @ p),
            lambda p: a,
            lambda p: b,
            3,
            max_outer_iterations=1,
            inner_iterations=3,
            certify=False,
        )
        assert result.converged is False
        # The partial iterate trail is still reported for diagnosis.
        assert len(result.q_history) == 1
        assert result.optimum == result.q_history[0]

    def test_solve_rmax_propagates_converged_flag(self):
        model = CovertChannelModel(
            cooldown=4, resolution=2, max_duration=10,
            delay=uniform_delay(4, 2),
        )
        strict = solve_rmax(model, inner_iterations=300)
        assert strict.converged is True
        # A single outer iteration cannot satisfy the convergence check
        # (the first q-update always moves away from q=0), so the flag
        # must come back False — not be swallowed.
        starved = solve_rmax(
            model, max_outer_iterations=1, inner_iterations=50
        )
        assert starved.converged is False
        assert starved.rate_upper_bound >= starved.rate - 1e-12
