"""Tests for the covert-channel model (Section 5.3)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.covert import (
    CovertChannelModel,
    no_delay,
    uniform_delay,
    worst_case_bits_per_assessment,
)
from repro.errors import ChannelModelError


def small_model(**overrides):
    kwargs = dict(cooldown=32, resolution=4, max_duration=96, delay=uniform_delay(32, 4))
    kwargs.update(overrides)
    return CovertChannelModel(**kwargs)


class TestConstruction:
    def test_duration_alphabet(self):
        m = small_model()
        assert m.durations[0] == 32
        assert m.durations[-1] == 96
        assert np.all(np.diff(m.durations) == 4)

    def test_resolution_must_divide_cooldown(self):
        with pytest.raises(ChannelModelError):
            CovertChannelModel(cooldown=30, resolution=4, max_duration=60)

    def test_max_duration_below_cooldown_rejected(self):
        with pytest.raises(ChannelModelError):
            CovertChannelModel(cooldown=32, resolution=4, max_duration=16)

    def test_delay_off_grid_rejected(self):
        from repro.info.distributions import DiscreteDistribution

        with pytest.raises(ChannelModelError):
            CovertChannelModel(
                cooldown=32,
                resolution=4,
                max_duration=64,
                delay=DiscreteDistribution.uniform([0, 3]),
            )

    def test_negative_delay_rejected(self):
        from repro.info.distributions import DiscreteDistribution

        with pytest.raises(ChannelModelError):
            CovertChannelModel(
                cooldown=32,
                resolution=4,
                max_duration=64,
                delay=DiscreteDistribution.uniform([-4, 0]),
            )

    def test_no_delay_default(self):
        m = CovertChannelModel(cooldown=32, resolution=4, max_duration=64)
        assert m.delay_entropy_bits() == 0.0


class TestUniformDelay:
    def test_support_spans_cooldown(self):
        d = uniform_delay(32, 4)
        assert sorted(d.support) == list(range(0, 32, 4))

    def test_entropy(self):
        assert uniform_delay(32, 4).entropy_bits() == pytest.approx(3.0)

    def test_rejects_bad_resolution(self):
        with pytest.raises(ChannelModelError):
            uniform_delay(30, 4)


class TestChannelMath:
    def test_transition_matrix_columns_stochastic(self):
        m = small_model()
        sums = m.transition_matrix.sum(axis=0)
        assert np.allclose(sums, 1.0)

    def test_delta_difference_symmetric_zero_mean(self):
        m = small_model()
        diff = m.delta_difference_distribution()
        assert diff.expectation() == pytest.approx(0.0, abs=1e-12)
        assert diff.probability(4) == pytest.approx(diff.probability(-4))

    def test_output_distribution_normalized(self):
        m = small_model()
        p_y = m.output_distribution(m.uniform_input())
        assert p_y.sum() == pytest.approx(1.0)

    def test_output_entropy_at_least_delay_entropy(self):
        """H(Y) >= H(delta): the numerator of the rate is non-negative."""
        m = small_model()
        rng = np.random.default_rng(0)
        for _ in range(10):
            p = rng.dirichlet(np.ones(m.num_inputs))
            assert m.per_transmission_bits(p) >= -1e-9

    def test_no_delay_channel_output_entropy_is_input_entropy(self):
        m = CovertChannelModel(cooldown=32, resolution=4, max_duration=64, delay=no_delay())
        p = m.uniform_input()
        expected = math.log2(m.num_inputs)
        assert m.output_entropy_bits(p) == pytest.approx(expected)

    def test_average_transmission_time_is_expectation(self):
        m = small_model()
        p = np.zeros(m.num_inputs)
        p[0] = 1.0
        assert m.average_transmission_time(p) == pytest.approx(32)

    def test_average_time_at_least_cooldown(self):
        """Mechanism 1: every duration >= T_c, so T_avg >= T_c."""
        m = small_model()
        rng = np.random.default_rng(1)
        for _ in range(10):
            p = rng.dirichlet(np.ones(m.num_inputs))
            assert m.average_transmission_time(p) >= m.cooldown - 1e-9

    def test_input_shape_checked(self):
        m = small_model()
        with pytest.raises(ChannelModelError):
            m.output_distribution(np.array([0.5, 0.5]))

    def test_bad_input_distribution_rejected(self):
        m = small_model()
        bad = np.zeros(m.num_inputs)
        bad[0] = 2.0
        with pytest.raises(ChannelModelError):
            m.rate(bad)

    def test_with_cooldown_scales_alphabet(self):
        m = small_model()
        stretched = m.with_cooldown(64)
        assert stretched.cooldown == 64
        assert stretched.durations[0] == 64
        assert stretched.max_duration - stretched.cooldown == (
            m.max_duration - m.cooldown
        )
        # The delay mechanism is unchanged.
        assert stretched.delay_entropy_bits() == m.delay_entropy_bits()


class TestStrategyExamples:
    def test_paper_section_531_example(self):
        """Strategy 1 (4 symbols at 1-4 ms) beats Strategy 2 (8 at 1-8 ms)."""
        s1 = CovertChannelModel.strategy_rate([1, 2, 3, 4])
        s2 = CovertChannelModel.strategy_rate(list(range(1, 9)))
        assert s1.bits_per_transmission == pytest.approx(2.0)
        assert s1.average_transmission_time == pytest.approx(2.5)
        assert s1.rate == pytest.approx(0.8)  # 800 bits/s in ms units
        assert s2.bits_per_transmission == pytest.approx(3.0)
        assert s2.average_transmission_time == pytest.approx(4.5)
        assert s2.rate == pytest.approx(2 / 3)  # ~667 bits/s
        assert s1.rate > s2.rate

    def test_strategy_with_explicit_probabilities(self):
        s = CovertChannelModel.strategy_rate([1, 3], [0.5, 0.5])
        assert s.average_transmission_time == pytest.approx(2.0)
        assert s.bits_per_transmission == pytest.approx(1.0)

    def test_strategy_rejects_empty(self):
        with pytest.raises(ChannelModelError):
            CovertChannelModel.strategy_rate([])

    def test_strategy_rejects_mismatched_probs(self):
        with pytest.raises(ChannelModelError):
            CovertChannelModel.strategy_rate([1, 2], [1.0])


def test_worst_case_bits():
    assert worst_case_bits_per_assessment(9) == pytest.approx(math.log2(9))
    with pytest.raises(ChannelModelError):
        worst_case_bits_per_assessment(0)


@settings(max_examples=25, deadline=None)
@given(
    cooldown_units=st.integers(4, 12),
    horizon_factor=st.integers(2, 4),
    seed=st.integers(0, 2**31 - 1),
)
def test_rate_positive_and_bounded(cooldown_units, horizon_factor, seed):
    """Random models: rates are finite, non-negative, bounded by H(Y)/T_c."""
    res = 4
    cooldown = cooldown_units * res
    m = CovertChannelModel(
        cooldown=cooldown,
        resolution=res,
        max_duration=horizon_factor * cooldown,
        delay=uniform_delay(cooldown, res),
    )
    p = np.random.default_rng(seed).dirichlet(np.ones(m.num_inputs))
    rate = m.rate(p)
    assert 0.0 <= rate <= math.log2(len(m.outputs)) / m.cooldown + 1e-9
