"""Tests for the design-principle enforcement (Section 5.2)."""

import pytest

from repro.core.principles import (
    check_timing_independence,
    require_progress_based_schedule,
    require_timing_independent_metric,
    require_untangle_compliant,
)
from repro.errors import PrincipleViolation


class FakeMetric:
    def __init__(self, timing_independent):
        self.timing_independent = timing_independent


class FakeSchedule:
    def __init__(self, progress_based):
        self.progress_based = progress_based


class TestStaticChecks:
    def test_compliant_metric_passes(self):
        require_timing_independent_metric(FakeMetric(True))

    def test_timing_dependent_metric_rejected(self):
        with pytest.raises(PrincipleViolation):
            require_timing_independent_metric(FakeMetric(False))

    def test_object_without_flag_rejected(self):
        with pytest.raises(PrincipleViolation):
            require_timing_independent_metric(object())

    def test_progress_schedule_passes(self):
        require_progress_based_schedule(FakeSchedule(True))

    def test_time_schedule_rejected(self):
        with pytest.raises(PrincipleViolation):
            require_progress_based_schedule(FakeSchedule(False))

    def test_combined_check(self):
        require_untangle_compliant(FakeMetric(True), FakeSchedule(True))
        with pytest.raises(PrincipleViolation):
            require_untangle_compliant(FakeMetric(False), FakeSchedule(True))
        with pytest.raises(PrincipleViolation):
            require_untangle_compliant(FakeMetric(True), FakeSchedule(False))


class TestDifferentialCheck:
    def test_identical_sequences_pass(self):
        report = check_timing_independence(lambda seed: (1, 2, 3), range(5))
        assert report.independent
        assert report.runs == 5
        assert bool(report)

    def test_divergent_sequences_fail(self):
        report = check_timing_independence(
            lambda seed: (1, 2, seed), range(3)
        )
        assert not report.independent
        assert report.first_divergence == 1

    def test_single_run_trivially_independent(self):
        report = check_timing_independence(lambda seed: (1,), [0])
        assert report.independent

    def test_no_runs_rejected(self):
        with pytest.raises(PrincipleViolation):
            check_timing_independence(lambda seed: (), [])
