"""End-to-end kernel equivalence: batched vs reference, every scheme.

The acceptance bar for the batched simulation kernel is bit-identical
*results* — not just similar statistics — for all four LLC
organizations. This test runs one full multi-domain simulation per
scheme under ``REPRO_SIM_KERNEL=reference`` and ``=batched`` and
compares everything an experiment reports: total cycles, per-workload
IPC, assessment counts, visible actions, leakage bits, and the
partition-size quartiles (which pin the whole resizing trace).
"""

from __future__ import annotations

import pytest

from repro.harness.experiment import run_mix_scheme
from repro.harness.runconfig import TEST
from repro.sim.kernelmode import KERNEL_ENV
from repro.workloads.mixes import get_mix

SCHEMES = ("static", "shared", "time", "untangle")


def _fingerprint(result) -> tuple:
    return (
        result.total_cycles,
        tuple(
            (
                w.label,
                w.ipc,
                w.assessments,
                w.visible_actions,
                w.leakage_bits,
                tuple(w.partition_quartiles),
            )
            for w in result.workloads
        ),
    )


@pytest.mark.parametrize("scheme", SCHEMES)
def test_batched_kernel_is_bit_identical(scheme, monkeypatch):
    pairs = get_mix(1)[:2]
    monkeypatch.setenv(KERNEL_ENV, "reference")
    reference = run_mix_scheme(pairs, scheme, TEST)
    monkeypatch.setenv(KERNEL_ENV, "batched")
    batched = run_mix_scheme(pairs, scheme, TEST)
    assert _fingerprint(batched) == _fingerprint(reference)


def test_unknown_kernel_mode_is_rejected(monkeypatch):
    from repro.errors import ConfigurationError
    from repro.sim.kernelmode import kernel_mode

    monkeypatch.setenv(KERNEL_ENV, "vectorized")
    with pytest.raises(ConfigurationError, match="REPRO_SIM_KERNEL"):
        kernel_mode()
