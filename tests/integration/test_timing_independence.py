"""Differential tests of Untangle's core security property (Section 5.2).

The claim: following Principles 1 and 2 plus annotations, the resizing
*action sequence* is a pure function of the public retired instruction
sequence — independent of program timing and of secrets. We test this
empirically by running the same victim:

* with perturbed memory-latency timing (Edge 3 of Figure 2), and
* with different secret inputs (Edge 1),

and asserting Untangle's visible action sequence is bit-for-bit
identical, while the Time baseline's generally is not.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ArchConfig
from repro.core.covert import uniform_delay
from repro.core.rates import RmaxTable
from repro.schemes.schedule import ProgressSchedule
from repro.schemes.timebased import TimeScheme
from repro.schemes.untangle import UntangleScheme
from repro.sim.cpu import CoreConfig, InstructionStream
from repro.sim.system import DomainSpec, MultiDomainSystem
from repro.workloads.workload import WorkloadScale, build_workload


@pytest.fixture(scope="module")
def arch():
    return ArchConfig.tiny(num_cores=1)


@pytest.fixture(scope="module")
def rate_table(small_channel_model):
    table = RmaxTable(small_channel_model, capacity=4, solver_iterations=100)
    table.entries()
    return table


def make_untangle(arch, rate_table, seed=0):
    schedule = ProgressSchedule(
        instructions_per_assessment=400,
        cooldown=32,
        delay=uniform_delay(32, 4),
        seed=seed,
    )
    return UntangleScheme(
        arch, schedule, rmax_table=rate_table, monitor_window=1_000
    )


def run_victim(arch, scheme, stream, core_config):
    system = MultiDomainSystem(
        arch,
        [DomainSpec("victim", stream, core_config)],
        scheme,
        quantum=64,
        sample_interval=256,
    )
    system.run(max_cycles=3_000_000)
    return system.trace_logs[0]


def action_sequence(log):
    """The action-decision sequence (sizes at each assessment)."""
    return tuple(action.new_size for action, _ in log)


def visible_timing(log):
    return tuple(t for action, t in log if action.is_visible)


class TestTimingIndependence:
    """Edge 3: timing perturbations must not change Untangle's actions."""

    def _workload(self, jitter_seed):
        built = build_workload(
            "deepsjeng_0",
            "AES-128",
            WorkloadScale.test(),
            seed=11,
            timing_jitter=20,
        )
        config = CoreConfig(
            mlp=built.core_config.mlp,
            slice_instructions=built.core_config.slice_instructions,
            warmup_instructions=0,
            timing_jitter=20,
            timing_jitter_seed=jitter_seed,
        )
        return built.stream, config

    def test_untangle_actions_invariant_under_jitter(self, arch, rate_table):
        sequences = []
        for jitter_seed in range(3):
            stream, config = self._workload(jitter_seed)
            scheme = make_untangle(arch, rate_table, seed=99)
            log = run_victim(arch, scheme, stream, config)
            sequences.append(action_sequence(log))
        assert sequences[0] == sequences[1] == sequences[2]
        assert len(sequences[0]) > 3  # the run actually assessed

    def test_untangle_timing_does_vary_under_jitter(self, arch, rate_table):
        """Timing is NOT invariant — that residue is the scheduling leakage."""
        timings = []
        for jitter_seed in range(2):
            stream, config = self._workload(jitter_seed)
            scheme = make_untangle(arch, rate_table, seed=99)
            log = run_victim(arch, scheme, stream, config)
            timings.append(tuple(t for _, t in log))
        assert timings[0] != timings[1]

    def test_time_scheme_actions_vary_under_jitter(self, arch):
        """The Time baseline's actions DO depend on timing (Edge 3 intact)."""
        sequences = []
        for jitter_seed in range(4):
            stream, config = self._workload(jitter_seed)
            scheme = TimeScheme(arch, interval=500, monitor_window=1_000)
            log = run_victim(arch, scheme, stream, config)
            sequences.append(action_sequence(log))
        # At least one jitter seed must change the sequence (it will:
        # assessment points land at different instructions).
        assert len(set(sequences)) > 1


class TestSecretIndependence:
    """Edge 1: secrets must not change Untangle's actions (annotations)."""

    def _workload(self, secret):
        built = build_workload(
            "gcc_0",
            "RSA-2048",  # secret-demand AND secret-timing sensitive
            WorkloadScale.test(),
            seed=21,
            secret=secret,
        )
        return built.stream, built.core_config

    def test_untangle_actions_secret_independent(self, arch, rate_table):
        sequences = []
        for secret in (0, 0b1, 0b1111):
            stream, config = self._workload(secret)
            scheme = make_untangle(arch, rate_table, seed=55)
            log = run_victim(arch, scheme, stream, config)
            sequences.append(action_sequence(log))
        assert sequences[0] == sequences[1] == sequences[2]

    def test_time_scheme_sees_secret_demand(self, arch):
        """Without annotations, secret-dependent demand reaches the metric.

        The Time baseline monitors crypto accesses too, so a secret that
        changes the crypto footprint can change its utilization curves.
        We assert the weaker, always-true property: the monitor observes
        different access *sets* across secrets (the leak's root cause),
        by checking the total observed counts differ or the sequences
        differ.
        """
        observations = []
        for secret in (0, 0b111111):
            stream, config = self._workload(secret)
            scheme = TimeScheme(arch, interval=500, monitor_window=1_000)
            log = run_victim(arch, scheme, stream, config)
            monitor = scheme.monitors[0]
            observations.append(
                (action_sequence(log), monitor._inner.total_observed)
            )
        assert observations[0] != observations[1]


class TestAnnotationNecessity:
    """Dropping annotations re-opens Edge 1 even under Untangle's schedule."""

    def test_unannotated_untangle_leaks_through_actions(self, arch, rate_table):
        """Same scheme mechanics, but the metric sees secret accesses.

        We simulate the no-annotation case by building the workload with
        the crypto part unannotated; a strongly secret-dependent demand
        then shifts utilization and can shift actions or assessment
        positions (the progress counter includes crypto instructions).
        """
        from repro.core.annotations import AnnotationVector

        sequences = []
        for secret in (0, 0xFFFF):
            built = build_workload(
                "gcc_0", "RSA-4096", WorkloadScale.test(), seed=31,
                secret=secret,
            )
            stripped = InstructionStream(
                built.stream.addresses,
                AnnotationVector.public(built.stream.length),
                stall_cycles=built.stream.stall_cycles,
            )
            scheme = make_untangle(arch, rate_table, seed=77)
            log = run_victim(arch, scheme, stripped, built.core_config)
            sequences.append(
                (action_sequence(log), tuple(t for _, t in log))
            )
        # The traces (actions or timings) differ across secrets.
        assert sequences[0] != sequences[1]
