"""Section 6.1: timing-dependent dynamic instruction sequences.

Spin loops and time checks make the *instruction sequence itself* depend
on timing — e.g. a thread may spin 3 or 300 iterations before acquiring
a lock. The paper's remedy: annotate those regions so they contribute
neither to the utilization metric nor to execution progress; the action
sequence then ignores how long the spinning took AND how many dynamic
instructions it produced.

We model two executions of "the same program" whose spin region differs
in length (as real timing variation would produce), annotate the region
TIMING_DEPENDENT, and assert the Untangle action sequence is identical —
and that it is NOT identical when the annotation is dropped.
"""

import numpy as np
import pytest

from repro.config import ArchConfig
from repro.core.annotations import AnnotationKind, AnnotationVector
from repro.core.covert import uniform_delay
from repro.core.rates import RmaxTable
from repro.schemes.schedule import ProgressSchedule
from repro.schemes.untangle import UntangleScheme
from repro.sim.cpu import CoreConfig, InstructionStream
from repro.sim.system import DomainSpec, MultiDomainSystem


@pytest.fixture(scope="module")
def rate_table(small_channel_model):
    table = RmaxTable(small_channel_model, capacity=4, solver_iterations=100)
    table.entries()
    return table


def build_program_with_spin(spin_iterations: int, annotated: bool) -> InstructionStream:
    """Public work, a spin region of variable length, more public work.

    The spin region polls a lock line (one load per iteration); its
    dynamic length models timing-dependent synchronization outcomes.
    """
    rng = np.random.default_rng(5)
    work_a = np.full(1_500, -1, dtype=np.int64)
    work_a[::4] = rng.integers(0, 24, size=len(work_a[::4]))
    spin = np.full(spin_iterations, 777_777, dtype=np.int64)  # poll the lock
    work_b = np.full(1_500, -1, dtype=np.int64)
    work_b[::4] = rng.integers(0, 24, size=len(work_b[::4])) + 100

    addresses = np.concatenate([work_a, spin, work_b])
    if annotated:
        kinds = (
            [AnnotationKind.NONE] * len(work_a)
            + [AnnotationKind.TIMING_DEPENDENT] * len(spin)
            + [AnnotationKind.NONE] * len(work_b)
        )
        annotations = AnnotationVector.from_kinds(kinds)
    else:
        annotations = AnnotationVector.public(len(addresses))
    return InstructionStream(addresses, annotations)


def run_actions(stream, rate_table):
    arch = ArchConfig.tiny(num_cores=1)
    schedule = ProgressSchedule(
        instructions_per_assessment=350,
        cooldown=32,
        delay=uniform_delay(32, 4),
        seed=13,
    )
    scheme = UntangleScheme(
        arch, schedule, rmax_table=rate_table, monitor_window=1_000
    )
    config = CoreConfig(mlp=2.0, slice_instructions=stream.length * 2)
    system = MultiDomainSystem(
        arch, [DomainSpec("spin", stream, config)], scheme, quantum=64
    )
    system.run(max_cycles=2_000_000)
    return tuple(action.new_size for action, _ in system.trace_logs[0])


class TestTimingDependentSequences:
    def test_annotated_spin_regions_do_not_change_actions(self, rate_table):
        short = run_actions(build_program_with_spin(10, annotated=True), rate_table)
        long = run_actions(build_program_with_spin(900, annotated=True), rate_table)
        assert short == long
        assert len(short) > 2

    def test_unannotated_spin_regions_do_change_actions(self, rate_table):
        """Without Section 6.1 annotations the sequence length shifts the
        progress-based assessment points, changing what gets assessed."""
        short = run_actions(build_program_with_spin(10, annotated=False), rate_table)
        long = run_actions(build_program_with_spin(900, annotated=False), rate_table)
        assert short != long

    def test_annotated_spin_excluded_from_metric(self):
        stream = build_program_with_spin(100, annotated=True)
        spin_mask = stream.addresses == 777_777
        assert stream.annotations.metric_excluded[spin_mask].all()
        assert stream.annotations.progress_excluded[spin_mask].all()
