"""Integration: the leakage threshold is enforced end-to-end (Section 4).

"The dynamic partitioning scheme measures the runtime leakage and
guarantees it cannot exceed this threshold. If and when the threshold is
reached, the victim is not allowed to perform further resizings —
hurting the performance of its subsequent execution, but not its
security."
"""

import pytest

from repro.config import ArchConfig
from repro.core.covert import uniform_delay
from repro.core.rates import RmaxTable
from repro.schemes.schedule import ProgressSchedule
from repro.schemes.untangle import UntangleScheme
from repro.sim.system import DomainSpec, MultiDomainSystem
from repro.workloads.workload import WorkloadScale, build_workload


@pytest.fixture(scope="module")
def rate_table(small_channel_model):
    table = RmaxTable(small_channel_model, capacity=4, solver_iterations=100)
    table.entries()
    return table


def run_with_threshold(threshold, rate_table, seed=0):
    arch = ArchConfig.tiny(num_cores=1)
    built = build_workload(
        "parest_0", "AES-128", WorkloadScale.test(), seed=seed
    )
    schedule = ProgressSchedule(
        instructions_per_assessment=300,
        cooldown=32,
        delay=uniform_delay(32, 4),
        seed=seed,
    )
    scheme = UntangleScheme(
        arch,
        schedule,
        rmax_table=rate_table,
        monitor_window=1_000,
        leakage_threshold_bits=threshold,
    )
    system = MultiDomainSystem(
        arch,
        [DomainSpec(built.label, built.stream, built.core_config)],
        scheme,
        quantum=64,
    )
    system.run(max_cycles=3_000_000)
    return scheme, system


class TestBudgetEnforcement:
    def test_unlimited_budget_resizes_freely(self, rate_table):
        scheme, system = run_with_threshold(None, rate_table)
        visible = [
            action for action, _ in system.trace_logs[0] if action.is_visible
        ]
        assert len(visible) >= 1

    def test_tight_budget_caps_total_leakage(self, rate_table):
        threshold = 0.8
        scheme, system = run_with_threshold(threshold, rate_table)
        accountant = scheme.accountants[0]
        # The total can overshoot by at most the final charging interval.
        max_single_charge = max(
            (c.bits for c in accountant.charges), default=0.0
        )
        assert accountant.total_bits <= threshold + max_single_charge + 1e-9

    def test_no_visible_actions_after_exhaustion(self, rate_table):
        scheme, system = run_with_threshold(0.8, rate_table)
        accountant = scheme.accountants[0]
        assert accountant.budget_exhausted
        exhausted_from = None
        running = 0.0
        for index, charge in enumerate(accountant.charges):
            running += charge.bits
            if running >= 0.8:
                exhausted_from = index
                break
        assert exhausted_from is not None
        later_visible = [
            c for c in accountant.charges[exhausted_from + 1 :] if c.visible
        ]
        assert later_visible == []

    def test_zero_threshold_means_pure_static_behaviour(self, rate_table):
        scheme, system = run_with_threshold(0.0, rate_table)
        visible = [
            action for action, _ in system.trace_logs[0] if action.is_visible
        ]
        assert visible == []
        arch_default = ArchConfig.tiny(num_cores=1).default_partition_lines
        assert scheme.llc.size_of(0) == arch_default
        assert scheme.accountants[0].total_bits == 0.0
