"""End-to-end integration: a small mix under all four schemes."""

import math

import pytest

from repro.harness.experiment import run_custom_mix
from repro.harness.runconfig import TEST

PAIRS = [
    ("parest_0", "AES-128"),   # LLC-sensitive
    ("imagick_0", "SHA-256"),  # compute-bound
]


@pytest.fixture(scope="module")
def result():
    return run_custom_mix(
        PAIRS, TEST, schemes=("static", "time", "untangle", "shared")
    )


class TestPerformanceShape:
    def test_all_schemes_complete(self, result):
        for run in result.runs.values():
            assert all(w.ipc > 0 for w in run.workloads)

    def test_dynamic_schemes_help_the_sensitive_workload(self, result):
        """parest wants 3 MB; dynamic schemes can exceed the 2 MB static."""
        for scheme in ("time", "untangle"):
            normalized = result.normalized_ipc(scheme)
            assert normalized["parest_0+AES-128"] > 1.1

    def test_insensitive_workload_not_crushed(self, result):
        for scheme in ("time", "untangle"):
            normalized = result.normalized_ipc(scheme)
            assert normalized["imagick_0+SHA-256"] > 0.7

    def test_untangle_performance_close_to_time(self, result):
        """The paper's claim: same performance, less leakage."""
        time_speedup = result.geomean_speedup("time")
        untangle_speedup = result.geomean_speedup("untangle")
        assert untangle_speedup == pytest.approx(time_speedup, rel=0.35)


class TestLeakageShape:
    def test_time_leaks_log2_9(self, result):
        run = result.runs["time"]
        for workload in run.workloads:
            assert workload.bits_per_assessment == pytest.approx(
                math.log2(9), abs=1e-6
            )

    def test_untangle_leaks_much_less(self, result):
        time_bits = result.runs["time"].mean_bits_per_assessment
        untangle_bits = result.runs["untangle"].mean_bits_per_assessment
        assert untangle_bits < 0.6 * time_bits

    def test_most_untangle_assessments_are_maintain(self, result):
        assert result.runs["untangle"].maintain_fraction > 0.5

    def test_static_and_shared_leak_nothing(self, result):
        for scheme in ("static", "shared"):
            run = result.runs[scheme]
            assert all(w.leakage_bits == 0.0 for w in run.workloads)


class TestTraceValidity:
    def test_partition_sizes_stay_supported(self, result):
        # The sampled extremes are real partition sizes; the inner
        # quartiles interpolate between samples, so they are only
        # required to stay inside the observed envelope.
        sizes = set(TEST.arch(2).supported_partition_lines)
        run = result.runs["untangle"]
        for workload in run.workloads:
            low, q1, median, q3, high = workload.partition_quartiles
            assert low in sizes
            assert high in sizes
            assert low <= q1 <= median <= q3 <= high

    def test_visible_plus_maintain_equals_assessments(self, result):
        for scheme in ("time", "untangle"):
            for workload in result.runs[scheme].workloads:
                assert workload.visible_actions <= workload.assessments


class TestDeterminism:
    def test_identical_profiles_identical_results(self):
        a = run_custom_mix(PAIRS, TEST, schemes=("untangle",))
        b = run_custom_mix(PAIRS, TEST, schemes=("untangle",))
        wa = a.runs["untangle"].workloads
        wb = b.runs["untangle"].workloads
        assert [w.ipc for w in wa] == [w.ipc for w in wb]
        assert [w.leakage_bits for w in wa] == [w.leakage_bits for w in wb]
