"""Tie Section 3.2's leakage definition to the simulator.

The paper defines a program's leakage as the entropy of its realizable
resizing traces over the input distribution (Equation 5.1), decomposed
into action and scheduling leakage (Equation 5.6). Here we *construct*
that ensemble empirically: run a Figure 1a-style victim under Untangle
for every secret value, collect the attacker-visible traces, and
decompose — demonstrating that annotations drive the action-leakage term
(not just the mutual information) to zero while scheduling leakage can
remain.
"""

import pytest

from repro.attacks.observer import observe
from repro.config import ArchConfig
from repro.core.covert import uniform_delay
from repro.core.decomposition import decompose
from repro.core.rates import RmaxTable
from repro.core.trace import ResizingTrace, TraceEnsemble
from repro.schemes.schedule import ProgressSchedule
from repro.schemes.untangle import UntangleScheme
from repro.sim.cpu import CoreConfig
from repro.sim.system import DomainSpec, MultiDomainSystem
from repro.workloads import snippets


@pytest.fixture(scope="module")
def rate_table(small_channel_model):
    table = RmaxTable(small_channel_model, capacity=4, solver_iterations=100)
    table.entries()
    return table


def run_victim(stream, rate_table) -> ResizingTrace:
    arch = ArchConfig.tiny(num_cores=1)
    schedule = ProgressSchedule(
        instructions_per_assessment=400,
        cooldown=32,
        delay=uniform_delay(32, 4),
        seed=7,
    )
    scheme = UntangleScheme(
        arch, schedule, rmax_table=rate_table, monitor_window=1_000
    )
    config = CoreConfig(mlp=2.0, slice_instructions=stream.length * 8)
    system = MultiDomainSystem(
        arch, [DomainSpec("victim", stream, config)], scheme, quantum=64
    )
    system.run(max_cycles=2_000_000)
    return ResizingTrace.from_pairs(system.trace_logs[0])


def visible_trace(trace: ResizingTrace) -> ResizingTrace:
    observed = observe(trace)
    from repro.core.actions import resize

    pairs = []
    previous_size = None
    for size, timestamp in observed.events:
        old = previous_size if previous_size is not None else size + 1
        pairs.append((resize(old, size), timestamp))
        previous_size = size
    return ResizingTrace.from_pairs(pairs)


def build_ensemble(annotated: bool, rate_table) -> TraceEnsemble:
    traces = []
    for secret in (0, 1):
        stream = snippets.figure_1a(
            bool(secret), annotated=annotated, array_lines=96, padding=800
        )
        traces.append(visible_trace(run_victim(stream, rate_table)))
    return TraceEnsemble.equally_likely(traces)


class TestEmpiricalDecomposition:
    def test_unannotated_victim_has_action_leakage(self, rate_table):
        breakdown = decompose(build_ensemble(annotated=False, rate_table=rate_table))
        assert breakdown.action_bits == pytest.approx(1.0)
        assert breakdown.total_bits >= 1.0 - 1e-9

    def test_annotated_victim_has_zero_action_leakage(self, rate_table):
        breakdown = decompose(build_ensemble(annotated=True, rate_table=rate_table))
        assert breakdown.action_bits == pytest.approx(0.0, abs=1e-12)

    def test_chain_rule_on_empirical_ensembles(self, rate_table):
        for annotated in (False, True):
            breakdown = decompose(
                build_ensemble(annotated=annotated, rate_table=rate_table)
            )
            assert breakdown.chain_rule_residual < 1e-9
