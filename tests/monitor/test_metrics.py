"""Tests for the metric protocol and timing-dependence declarations."""

import pytest

from repro.core.principles import require_timing_independent_metric
from repro.errors import PrincipleViolation
from repro.monitor.metrics import TimingDependentView, UtilizationMonitor
from repro.monitor.umon import UMONMonitor


def test_umon_satisfies_protocol():
    monitor = UMONMonitor([4, 8])
    assert isinstance(monitor, UtilizationMonitor)


def test_view_delegates_but_flips_flag():
    monitor = UMONMonitor([4, 8])
    view = TimingDependentView(monitor)
    view.observe(1)
    view.observe(1)
    assert monitor.total_observed == 2
    assert view.hits_per_size()[0] == 1.0
    assert not view.timing_independent
    assert view.candidate_sizes == [4, 8]


def test_view_fails_principle_check():
    view = TimingDependentView(UMONMonitor([4, 8]))
    with pytest.raises(PrincipleViolation):
        require_timing_independent_metric(view)


def test_view_reset_window():
    monitor = UMONMonitor([4, 8])
    view = TimingDependentView(monitor)
    view.observe(1)
    view.observe(1)
    view.reset_window()
    assert view.hits_per_size().sum() == 0.0


def test_view_epoch_accesses():
    view = TimingDependentView(UMONMonitor([4, 8]))
    view.observe(1)
    assert view.epoch_accesses() == 1.0
