"""Tests for the Fenwick tree and reuse-distance tracker."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.monitor.window import COLD_DISTANCE, FenwickTree, ReuseDistanceTracker


def naive_reuse_distances(addresses):
    """Obviously-correct reference: distinct lines since last access."""
    last_index = {}
    out = []
    for i, addr in enumerate(addresses):
        if addr not in last_index:
            out.append(COLD_DISTANCE)
        else:
            out.append(len(set(addresses[last_index[addr] + 1 : i])))
        last_index[addr] = i
    return out


class TestFenwickTree:
    def test_prefix_sums(self):
        tree = FenwickTree(8)
        tree.add(3, 5)
        tree.add(5, 2)
        assert tree.prefix_sum(2) == 0
        assert tree.prefix_sum(3) == 5
        assert tree.prefix_sum(8) == 7

    def test_range_sum(self):
        tree = FenwickTree(8)
        for i in range(1, 9):
            tree.add(i, 1)
        assert tree.range_sum(3, 5) == 3
        assert tree.range_sum(5, 3) == 0

    def test_growth(self):
        tree = FenwickTree(2)
        tree.add(1, 7)
        tree.add(100, 3)  # forces growth, must preserve prior values
        assert tree.prefix_sum(1) == 7
        assert tree.prefix_sum(100) == 10

    def test_validation(self):
        with pytest.raises(SimulationError):
            FenwickTree(0)
        with pytest.raises(SimulationError):
            FenwickTree(4).add(0, 1)

    def test_prefix_beyond_capacity_clamps(self):
        tree = FenwickTree(4)
        tree.add(2, 3)
        assert tree.prefix_sum(1000) == 3

    @settings(max_examples=60, deadline=None)
    @given(
        capacity=st.sampled_from([1, 2, 3, 5, 8]),
        updates=st.lists(
            st.tuples(st.integers(1, 40), st.integers(-3, 3)),
            min_size=1,
            max_size=30,
        ),
    )
    def test_growth_preserves_every_prefix_sum(self, capacity, updates):
        """_grow rebuilds point values exactly, whatever the tree holds.

        Regression test for the point-value extraction: a Fenwick node's
        value must be recovered as its range sum minus its *direct
        children's* range sums; growth from any mid-stream state (mixed
        signs, cancelled positions, non-power-of-two capacities) must
        leave all prefix sums unchanged.
        """
        tree = FenwickTree(capacity)
        reference = {}
        for position, delta in updates:
            tree.add(position, delta)  # may grow mid-stream
            reference[position] = reference.get(position, 0) + delta
        tree._grow(4 * tree._size)  # and one explicit final growth
        for position in range(1, max(reference) + 2):
            expected = sum(v for p, v in reference.items() if p <= position)
            assert tree.prefix_sum(position) == expected


class TestReuseDistanceTracker:
    def test_cold_misses(self):
        tracker = ReuseDistanceTracker()
        assert tracker.observe(1) == COLD_DISTANCE
        assert tracker.observe(2) == COLD_DISTANCE

    def test_immediate_reuse_distance_zero(self):
        tracker = ReuseDistanceTracker()
        tracker.observe(1)
        assert tracker.observe(1) == 0

    def test_one_intervening_line(self):
        tracker = ReuseDistanceTracker()
        tracker.observe(1)
        tracker.observe(2)
        assert tracker.observe(1) == 1

    def test_repeated_intervening_counts_once(self):
        tracker = ReuseDistanceTracker()
        tracker.observe(1)
        tracker.observe(2)
        tracker.observe(2)
        tracker.observe(2)
        assert tracker.observe(1) == 1

    def test_scan_distance_is_working_set_minus_one(self):
        tracker = ReuseDistanceTracker()
        ws = 16
        for addr in range(ws):
            tracker.observe(addr)
        assert tracker.observe(0) == ws - 1

    def test_distinct_lines(self):
        tracker = ReuseDistanceTracker()
        for addr in [1, 2, 1, 3]:
            tracker.observe(addr)
        assert tracker.distinct_lines == 3

    def test_reset(self):
        tracker = ReuseDistanceTracker()
        tracker.observe(1)
        tracker.reset()
        assert tracker.observe(1) == COLD_DISTANCE
        assert tracker.distinct_lines == 1


@settings(max_examples=40, deadline=None)
@given(addresses=st.lists(st.integers(0, 25), min_size=1, max_size=250))
def test_tracker_matches_naive_reference(addresses):
    tracker = ReuseDistanceTracker()
    assert [tracker.observe(a) for a in addresses] == naive_reuse_distances(
        addresses
    )


@settings(max_examples=40, deadline=None)
@given(
    runs=st.lists(
        st.lists(st.integers(0, 25), min_size=0, max_size=60),
        min_size=1,
        max_size=6,
    )
)
def test_observe_run_matches_observe_loop(runs):
    """The batched tracker path is exact: distances and final state.

    Runs are interleaved with scalar observes (one per run boundary) so
    the batched path is exercised from arbitrary mid-stream states, not
    just a fresh tracker.
    """
    batched = ReuseDistanceTracker()
    scalar = ReuseDistanceTracker()
    for run in runs:
        assert batched.observe_run(run) == [scalar.observe(a) for a in run]
        assert batched.observe(99) == scalar.observe(99)
        assert batched._clock == scalar._clock
        assert batched._last_position == scalar._last_position
    probe = list(range(26)) + [99]
    assert batched.observe_run(probe) == [scalar.observe(a) for a in probe]


@settings(max_examples=20, deadline=None)
@given(
    addresses=st.lists(st.integers(0, 15), min_size=1, max_size=150),
    capacity=st.sampled_from([1, 2, 4, 8]),
)
def test_reuse_distance_predicts_fa_lru_hits(addresses, capacity):
    """distance < C  <=>  hit in a fully-associative LRU cache of C lines."""
    from repro.sim.cache import SetAssociativeCache

    tracker = ReuseDistanceTracker()
    cache = SetAssociativeCache(1, capacity)
    for addr in addresses:
        distance = tracker.observe(addr)
        hit = cache.access(addr)
        assert hit == (distance != COLD_DISTANCE and distance < capacity)
