"""Tests for the footprint metric (Section 5.2's example metric)."""

import pytest

from repro.errors import ConfigurationError
from repro.monitor.footprint import FootprintMetric


def test_declared_timing_independent():
    assert FootprintMetric(4).timing_independent


def test_window_validation():
    with pytest.raises(ConfigurationError):
        FootprintMetric(0)


def test_counts_unique_lines():
    metric = FootprintMetric(10)
    for addr in [1, 2, 2, 3]:
        metric.observe(addr)
    assert metric.value == 3


def test_window_sliding():
    metric = FootprintMetric(3)
    for addr in [1, 2, 3, 4]:
        metric.observe(addr)
    # 1 fell out of the window.
    assert metric.value == 3
    assert metric.accesses_in_window == 3


def test_duplicate_within_window_survives_partial_eviction():
    metric = FootprintMetric(3)
    for addr in [5, 5, 6, 7]:
        metric.observe(addr)
    # The first 5 left the window but the second 5 is still inside.
    assert metric.value == 3


def test_reset():
    metric = FootprintMetric(3)
    metric.observe(1)
    metric.reset()
    assert metric.value == 0
    assert metric.accesses_in_window == 0


def test_window_property():
    assert FootprintMetric(7).window == 7
