"""Tests for the UMON-style utilization monitor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.monitor.umon import UMONMonitor
from repro.sim.cache import SetAssociativeCache

SIZES = [4, 8, 16, 32]


class TestConstruction:
    def test_sizes_must_be_ascending_unique(self):
        with pytest.raises(ConfigurationError):
            UMONMonitor([8, 4])
        with pytest.raises(ConfigurationError):
            UMONMonitor([4, 4])

    def test_bad_window(self):
        with pytest.raises(ConfigurationError):
            UMONMonitor(SIZES, window=0)

    def test_bad_sampling(self):
        with pytest.raises(ConfigurationError):
            UMONMonitor(SIZES, sampling_shift=-1)


class TestHitCurves:
    def test_curve_nondecreasing(self):
        """Stack inclusion: more capacity never means fewer hits."""
        monitor = UMONMonitor(SIZES)
        rng = np.random.default_rng(0)
        for addr in rng.integers(0, 40, size=500):
            monitor.observe(int(addr))
        curve = monitor.hits_per_size()
        assert all(b >= a - 1e-9 for a, b in zip(curve, curve[1:]))

    def test_scan_curve_is_step(self):
        """A cyclic scan of 10 lines hits only at sizes > 9."""
        monitor = UMONMonitor(SIZES)
        for _ in range(5):
            for addr in range(10):
                monitor.observe(addr)
        curve = monitor.hits_per_size()
        assert curve[0] == 0  # size 4
        assert curve[1] == 0  # size 8
        assert curve[2] > 0  # size 16 captures the scan
        assert curve[2] == curve[3]

    def test_curve_matches_fa_lru_caches(self):
        """The monitor's prediction equals real FA LRU caches of each size."""
        monitor = UMONMonitor(SIZES, window=10_000)
        caches = [SetAssociativeCache(1, size) for size in SIZES]
        rng = np.random.default_rng(1)
        addresses = rng.integers(0, 30, size=800)
        hits = [0] * len(SIZES)
        for addr in addresses:
            monitor.observe(int(addr))
            for k, cache in enumerate(caches):
                if cache.access(int(addr)):
                    hits[k] += 1
        assert monitor.hits_per_size().tolist() == pytest.approx(hits)

    def test_misses_at_size(self):
        monitor = UMONMonitor(SIZES, window=10_000)
        for addr in [1, 1, 2, 2]:
            monitor.observe(addr)
        assert monitor.misses_at_size(len(SIZES) - 1) == pytest.approx(2.0)


class TestWindowing:
    def test_reset_window_clears_counts_not_stack(self):
        monitor = UMONMonitor(SIZES)
        monitor.observe(1)
        monitor.reset_window()
        assert monitor.hits_per_size().sum() == 0
        monitor.observe(1)  # still warm in the stack: an immediate hit
        assert monitor.hits_per_size()[0] == 1.0

    def test_clear_forgets_stack(self):
        monitor = UMONMonitor(SIZES)
        monitor.observe(1)
        monitor.clear()
        monitor.observe(1)
        assert monitor.hits_per_size().sum() == 0  # cold again

    def test_aging_halves_counts(self):
        monitor = UMONMonitor(SIZES, window=10)
        for _ in range(20):
            monitor.observe(1)
        # Aging kept the epoch mass near the window size.
        assert monitor.epoch_accesses() <= 11

    def test_total_observed_counts_everything(self):
        monitor = UMONMonitor(SIZES, sampling_shift=2)
        for addr in range(16):
            monitor.observe(addr)
        assert monitor.total_observed == 16


class TestSampling:
    def test_sampling_scales_counts(self):
        dense = UMONMonitor(SIZES, window=100_000)
        sampled = UMONMonitor(SIZES, window=100_000, sampling_shift=1)
        rng = np.random.default_rng(2)
        # A universe much larger than 2**shift, so the hash-sampled
        # subset is a representative half of the addresses.
        addresses = rng.integers(0, 512, size=20_000)
        for addr in addresses:
            dense.observe(int(addr))
            sampled.observe(int(addr))
        dense_curve = dense.hits_per_size()
        sampled_curve = sampled.hits_per_size()
        # Sampled estimate within 30% of the dense count at the top size.
        assert sampled_curve[-1] == pytest.approx(dense_curve[-1], rel=0.3)

    def test_sampled_observed_counts_filter_survivors(self):
        monitor = UMONMonitor(SIZES, sampling_shift=2)
        for addr in range(64):
            monitor.observe(addr)
        assert 0 < monitor.sampled_observed < monitor.total_observed == 64

    def test_sampled_observed_equals_total_without_sampling(self):
        monitor = UMONMonitor(SIZES)
        for addr in range(16):
            monitor.observe(addr)
        assert monitor.sampled_observed == monitor.total_observed == 16

    def test_sampled_observed_batched_matches_scalar(self):
        batched = UMONMonitor(SIZES, sampling_shift=1)
        scalar = UMONMonitor(SIZES, sampling_shift=1)
        addrs = np.arange(200, dtype=np.int64)
        batched.observe_block(addrs)
        for addr in range(200):
            scalar.observe(addr)
        assert batched.sampled_observed == scalar.sampled_observed > 0

    def test_clear_resets_sampled_observed(self):
        monitor = UMONMonitor(SIZES)
        monitor.observe(1)
        monitor.clear()
        assert monitor.sampled_observed == 0

    def test_strided_stream_sampled_fairly(self):
        """A stride that is a multiple of ``2**shift`` samples ~1/2**shift.

        Regression: the monitor used to mask raw low address bits, so a
        stride-aligned stream was sampled at exactly 100% (offset 0) or
        0% (any other offset), biasing the hits-per-size curve.
        """
        shift = 2
        stride = 1 << shift
        n = 4096
        for offset in (0, 1):
            monitor = UMONMonitor(SIZES, window=10**9, sampling_shift=shift)
            for i in range(n):
                monitor.observe(i * stride + offset)
            # epoch_accesses scales the sampled count back up by 2**shift.
            sampled = monitor.epoch_accesses() / (1 << shift)
            assert 0.15 < sampled / n < 0.35, f"offset={offset}"


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_curve_never_exceeds_observed_accesses(seed):
    monitor = UMONMonitor(SIZES, window=100_000)
    rng = np.random.default_rng(seed)
    n = 300
    for addr in rng.integers(0, 20, size=n):
        monitor.observe(int(addr))
    assert monitor.hits_per_size()[-1] <= n


def _monitor_state(monitor):
    return (
        monitor.total_observed,
        monitor.hits_per_size().tolist(),
        monitor.epoch_accesses(),
        monitor._tracker._clock,
        dict(monitor._tracker._last_position),
    )


class TestObserveBlock:
    """The batched monitor path is bit-identical to the scalar one."""

    @settings(max_examples=30, deadline=None)
    @given(
        shift=st.sampled_from([0, 1, 3]),
        window=st.sampled_from([50, 100_000]),
        runs=st.lists(
            st.lists(st.integers(0, 60), min_size=0, max_size=80),
            min_size=1,
            max_size=4,
        ),
        precompute_hashes=st.booleans(),
    )
    def test_matches_observe_loop(self, shift, window, runs, precompute_hashes):
        from repro.monitor.umon import mix64_array

        batched = UMONMonitor(SIZES, window=window, sampling_shift=shift)
        scalar = UMONMonitor(SIZES, window=window, sampling_shift=shift)
        for run in runs:
            addrs = np.array(run, dtype=np.int64)
            hashes = (
                mix64_array(addrs)
                if precompute_hashes and batched.uses_address_hashes
                else None
            )
            batched.observe_block(addrs, hashes)
            for addr in run:
                scalar.observe(addr)
            assert _monitor_state(batched) == _monitor_state(scalar)

    def test_small_window_halving_sequence_is_exact(self):
        """The mid-run aging halvings replay bit-for-bit."""
        batched = UMONMonitor(SIZES, window=8)
        scalar = UMONMonitor(SIZES, window=8)
        addrs = np.arange(100, dtype=np.int64) % 12
        batched.observe_block(addrs)
        for addr in addrs.tolist():
            scalar.observe(addr)
        assert _monitor_state(batched) == _monitor_state(scalar)


@settings(max_examples=30, deadline=None)
@given(addrs=st.lists(st.integers(0, 2**62), min_size=1, max_size=50))
def test_mix64_array_matches_scalar_mix64(addrs):
    """The vectorized SplitMix64 equals the scalar per-address hash."""
    from repro.monitor.umon import _mix64, mix64_array

    hashes = mix64_array(np.array(addrs, dtype=np.int64))
    assert hashes.dtype == np.uint64
    assert hashes.tolist() == [_mix64(a) for a in addrs]
