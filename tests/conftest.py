"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ArchConfig
from repro.core.covert import CovertChannelModel, uniform_delay
from repro.core.rates import RmaxTable


@pytest.fixture(scope="session")
def tiny_arch() -> ArchConfig:
    """A 2-core machine small enough for fast unit tests."""
    return ArchConfig.tiny(num_cores=2)


@pytest.fixture(scope="session")
def scaled_arch() -> ArchConfig:
    """The default 8-core scaled machine."""
    return ArchConfig.scaled()


@pytest.fixture(scope="session")
def small_channel_model() -> CovertChannelModel:
    """A small covert-channel model (fast to optimize)."""
    return CovertChannelModel(
        cooldown=32,
        resolution=4,
        max_duration=96,
        delay=uniform_delay(32, 4),
    )


@pytest.fixture(scope="session")
def small_rate_table(small_channel_model) -> RmaxTable:
    """A fully materialized table over the small model."""
    table = RmaxTable(small_channel_model, capacity=6, solver_iterations=150)
    table.entries()
    return table


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
