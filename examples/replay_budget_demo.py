#!/usr/bin/env python3
"""Replay attacks vs the cross-run leakage budget (Section 6.2).

An attacker replays the victim many times, harvesting scheduling leakage
from every run. The OS counters by accumulating the victim's leakage
across runs against one threshold; once exhausted, resizing is disabled
permanently and later replays learn nothing more — at a performance
cost, never a security cost.

The demo also exercises the annotation pipeline end-to-end: the victim
is a Figure 1a-style IR program annotated by the taint analysis
(``repro.analysis``), compiled to an instruction stream by the executor.

Run:  python examples/replay_budget_demo.py
"""

from repro.analysis.executor import execute
from repro.analysis.programs import secret_gated_traversal
from repro.attacks.replay import ReplayCampaign
from repro.core.accountant import LeakageAccountant
from repro.core.rates import RmaxTable
from repro.schemes.untangle import default_channel_model

THRESHOLD_BITS = 5.0
COOLDOWN = 64


def annotated_victim_demo() -> None:
    print("=== Annotation pipeline: IR -> taint -> stream ===")
    program = secret_gated_traversal(8)
    for secret in (0, 1):
        result = execute(program, secret_inputs=[secret])
        stream = result.stream
        summary = stream.annotations.summary()
        print(
            f"  secret={secret}: {result.executed_instructions} instructions, "
            f"{stream.memory_instruction_count} loads, "
            f"{summary.excluded_from_metric} metric-excluded, "
            f"public progress per pass = {stream.public_per_pass}"
        )
    print("  -> public progress is identical for both secrets: the")
    print("     annotated traversal cannot influence Untangle's actions.\n")


def replay_campaign_demo() -> None:
    print(f"=== Replay campaign against a {THRESHOLD_BITS}-bit budget ===")
    model = default_channel_model(COOLDOWN)
    table = RmaxTable(model, capacity=8)
    accountant = LeakageAccountant(table, threshold_bits=THRESHOLD_BITS)

    def victim_run(acc: LeakageAccountant):
        """Five assessments per run; the victim wants to resize each time."""
        decisions = []
        for i in range(1, 6):
            visible = acc.check_resize_allowed()
            acc.on_assessment(i * COOLDOWN, visible)
            decisions.append((i * COOLDOWN, visible))
        return decisions

    campaign = ReplayCampaign(accountant, victim_run)
    campaign.replay(8)

    print(f"{'run':>4s} {'charged':>9s} {'total':>8s} {'resizes':>8s} {'denied':>7s}")
    for run in campaign.runs:
        total_so_far = sum(r.bits_charged for r in campaign.runs[: run.index + 1])
        print(
            f"{run.index:4d} {run.bits_charged:8.3f}b {total_so_far:7.3f}b "
            f"{run.resizes_allowed:8d} {run.resizes_denied:7d}"
        )
    print(
        f"\nbudget exhausted: {accountant.budget_exhausted}; "
        f"accumulated leakage {accountant.total_bits:.3f} bits "
        f"(threshold {THRESHOLD_BITS})"
    )
    print("after exhaustion every run is resize-free and charges 0 bits:")
    print("the attacker gains nothing from further replays.")


def main() -> None:
    annotated_victim_demo()
    replay_campaign_demo()


if __name__ == "__main__":
    main()
