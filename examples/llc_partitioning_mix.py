#!/usr/bin/env python3
"""Run one full evaluation mix: the paper's headline experiment.

Simulates a paper workload mix (default: Mix 1 of Figure 10) on the
8-core scaled machine under all four Table 4 schemes and prints the
figure panels: normalized IPC, leakage per assessment, and partition-size
distributions.

Run:  python examples/llc_partitioning_mix.py [mix_id] [--quick]

``--quick`` runs a reduced 2-workload mix (~15 s) instead of the full
8-workload mix (~30 s).
"""

import sys

from repro.harness.experiment import run_custom_mix, run_mix
from repro.harness.figures import figure_group
from repro.harness.report import render_figure_group
from repro.harness.runconfig import SCALED, TEST


def main(argv: list[str]) -> None:
    mix_id = 1
    quick = "--quick" in argv
    positional = [a for a in argv if not a.startswith("-")]
    if positional:
        mix_id = int(positional[0])

    if quick:
        print("Quick mode: 2-workload mini mix at the TEST profile")
        result = run_custom_mix(
            [("parest_0", "AES-128"), ("imagick_0", "SHA-256")],
            TEST,
        )
        for scheme in ("time", "untangle", "shared"):
            print(f"\n{scheme}: geomean speedup over static = "
                  f"{result.geomean_speedup(scheme):.3f}")
            for label, value in result.normalized_ipc(scheme).items():
                print(f"  {label:24s} {value:.3f}")
        for scheme in ("time", "untangle"):
            run = result.runs[scheme]
            print(f"{scheme}: {run.mean_bits_per_assessment:.2f} bits/assessment "
                  f"(maintain fraction {run.maintain_fraction:.2f})")
        return

    print(f"Running paper Mix {mix_id} under Static/Time/Untangle/Shared "
          "(this takes ~30 s)...")
    result = run_mix(mix_id, SCALED)
    group = figure_group(mix_id, SCALED, mix_result=result)
    print()
    print(render_figure_group(group))

    time_bits = result.runs["time"].mean_bits_per_assessment
    untangle_bits = result.runs["untangle"].mean_bits_per_assessment
    reduction = 1 - untangle_bits / time_bits
    print(f"\nUntangle leaks {reduction:.0%} less per assessment than Time "
          "(paper headline: 78% on average across mixes).")


if __name__ == "__main__":
    main(sys.argv[1:])
