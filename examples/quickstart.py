#!/usr/bin/env python3
"""Quickstart: Untangle's leakage framework in five minutes.

Walks the paper's core machinery on small, fast inputs:

1. The Figure 3 leakage decomposition — action vs scheduling leakage.
2. The Section 5.3.1 transmission-strategy trade-off.
3. The covert-channel model and its certified max rate (Appendix A).
4. The Maintain-optimized rate table (Sections 5.3.4 / 7).
5. Runtime leakage accounting against a budget (Section 7).

Run:  python examples/quickstart.py
"""

from repro.core import (
    CovertChannelModel,
    LeakageAccountant,
    ResizingTrace,
    RmaxTable,
    TraceEnsemble,
    decompose,
    maintain,
    resize,
    solve_rmax,
    uniform_delay,
)


def section(title: str) -> None:
    print(f"\n=== {title} ===")


def figure3_decomposition() -> None:
    section("1. Leakage decomposition (Figure 3)")
    s1_fast = ResizingTrace.from_pairs([(resize(1, 2), 100), (maintain(2), 200)])
    s1_slow = ResizingTrace.from_pairs([(resize(1, 2), 150), (maintain(2), 300)])
    s2 = ResizingTrace.from_pairs([(maintain(1), 120), (maintain(1), 240)])
    ensemble = TraceEnsemble({s1_fast: 0.25, s1_slow: 0.25, s2: 0.5})
    breakdown = decompose(ensemble)
    print(f"action leakage     H(S)             = {breakdown.action_bits:.3f} bits")
    print(f"scheduling leakage E[H(T_s | S=s)]  = {breakdown.scheduling_bits:.3f} bits")
    print(f"total leakage      H(S, T_S)        = {breakdown.total_bits:.3f} bits")
    print("(the paper's example: 1 + 0.5 = 1.5 bits)")


def strategy_tradeoff() -> None:
    section("2. Transmission-strategy trade-off (Section 5.3.1)")
    s1 = CovertChannelModel.strategy_rate([1, 2, 3, 4])
    s2 = CovertChannelModel.strategy_rate(list(range(1, 9)))
    print(f"4 symbols at 1-4 ms: {s1.bits_per_transmission:.0f} bits / "
          f"{s1.average_transmission_time} ms = {s1.rate * 1000:.0f} bits/s")
    print(f"8 symbols at 1-8 ms: {s2.bits_per_transmission:.0f} bits / "
          f"{s2.average_transmission_time} ms = {s2.rate * 1000:.0f} bits/s")
    print("more symbols != more rate: the alphabet costs transmission time")


def covert_channel_bound() -> CovertChannelModel:
    section("3. Covert-channel model and R'_max (Appendix A)")
    cooldown = 64  # T_c in time units
    model = CovertChannelModel(
        cooldown=cooldown,
        resolution=4,
        max_duration=4 * cooldown,
        delay=uniform_delay(cooldown, 4),
    )
    print(model)
    result = solve_rmax(model)
    print(f"R'_max  = {result.rate * cooldown:.3f} bits per cooldown "
          f"(certified <= {result.rate_upper_bound * cooldown:.3f})")
    print(f"optimal sender: {result.bits_per_transmission:.2f} bits per "
          f"transmission every {result.average_transmission_time / cooldown:.2f} T_c")
    return model


def maintain_table(model: CovertChannelModel) -> RmaxTable:
    section("4. Maintain-optimized rate table (Sections 5.3.4 / 7)")
    table = RmaxTable(model, capacity=6)
    for entry in table.entries():
        print(f"  {entry.maintains} consecutive Maintains -> effective "
              f"T'_c = {entry.effective_cooldown // model.cooldown} T_c, "
              f"rate {entry.rate_upper_bound * model.cooldown:.3f} bits/T_c")
    return table


def runtime_accounting(table: RmaxTable) -> None:
    section("5. Runtime leakage accounting with a budget (Section 7)")
    accountant = LeakageAccountant(table, threshold_bits=3.0)
    cooldown = table.cooldown
    pattern = [False, False, True, False, False, False, True, True, True, True]
    for i, visible in enumerate(pattern, start=1):
        if visible and not accountant.resizing_allowed:
            visible = False  # budget: the resize is denied
        bits = accountant.on_assessment(i * cooldown, visible)
        kind = "visible" if visible else "Maintain"
        print(f"  assessment {i:2d} ({kind:8s}): +{bits:.3f} bits "
              f"(total {accountant.total_bits:.3f})")
    report = accountant.report()
    print(f"total: {report.total_bits:.2f} bits over {report.assessments} "
          f"assessments; budget exhausted: {report.budget_exhausted}")


def main() -> None:
    figure3_decomposition()
    strategy_tradeoff()
    model = covert_channel_bound()
    table = maintain_table(model)
    runtime_accounting(table)
    print("\nNext: examples/llc_partitioning_mix.py runs a full evaluation mix.")


if __name__ == "__main__":
    main()
