#!/usr/bin/env python3
"""The scheduling-leakage bound, attacked: senders vs the certificate.

Builds the Section 5.3.3 covert channel, computes the certified maximum
data rate R'_max with Dinkelbach's transform (Appendix A), then lets a
cooperative sender/receiver pair actually *use* the channel with several
strategies — including the solver's optimal input distribution — and
compares the achieved empirical rates against the certified bound.

Also sweeps the two rate-reduction mechanisms of Section 5.3.2:
cooldown length and random-delay width.

Run:  python examples/covert_channel_bound.py
"""

import numpy as np

from repro.attacks.channel_sim import CovertChannelSimulator
from repro.core.covert import CovertChannelModel, no_delay, uniform_delay
from repro.core.dinkelbach import solve_rmax

COOLDOWN = 64
RESOLUTION = 4


def build_model(cooldown=COOLDOWN, delay_width=COOLDOWN) -> CovertChannelModel:
    delay = (
        uniform_delay(delay_width, RESOLUTION) if delay_width > 0 else no_delay()
    )
    return CovertChannelModel(
        cooldown=cooldown,
        resolution=RESOLUTION,
        max_duration=4 * cooldown,
        delay=delay,
    )


def attack_the_bound() -> None:
    print("=== Senders vs the certified bound ===")
    model = build_model()
    solution = solve_rmax(model)
    bound = solution.rate_upper_bound
    print(f"certified R'_max = {bound * COOLDOWN:.3f} bits/T_c\n")

    rng = np.random.default_rng(0)
    strategies = {
        "optimal (solver)": solution.input_distribution,
        "uniform": model.uniform_input(),
        "two-symbol": None,
        "random": rng.dirichlet(np.ones(model.num_inputs)),
    }
    two = np.zeros(model.num_inputs)
    two[0] = two[-1] = 0.5
    strategies["two-symbol"] = two

    print(f"{'strategy':18s} {'empirical rate':>16s} {'of bound':>9s} {'decode':>7s}")
    for name, p in strategies.items():
        simulator = CovertChannelSimulator(model, seed=11)
        outcome = simulator.transmit(p, 4_000)
        print(
            f"{name:18s} {outcome.empirical_rate * COOLDOWN:13.3f} b/T_c "
            f"{outcome.empirical_rate / bound:8.0%} {outcome.decode_accuracy:7.2f}"
        )
    print("no strategy exceeds the certificate — that is the point.\n")


def sweep_mechanisms() -> None:
    print("=== Mechanism 1: cooldown sweep ===")
    for cooldown in (32, 64, 128, 256):
        model = build_model(cooldown=cooldown, delay_width=cooldown)
        result = solve_rmax(model)
        print(
            f"  T_c={cooldown:4d}: R'_max={result.rate_upper_bound * cooldown:6.3f} "
            f"bits/T_c  ({result.rate_upper_bound:8.5f} bits/cycle)"
        )

    print("\n=== Mechanism 2: random-delay sweep (T_c = 64) ===")
    for delay_width in (0, 16, 32, 64):
        model = build_model(delay_width=delay_width)
        result = solve_rmax(model)
        label = f"uniform[0,{delay_width})" if delay_width else "no delay"
        print(
            f"  {label:15s}: R'_max={result.rate_upper_bound * COOLDOWN:6.3f} bits/T_c"
        )


def main() -> None:
    attack_the_bound()
    sweep_mechanisms()


if __name__ == "__main__":
    main()
