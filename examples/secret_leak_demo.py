#!/usr/bin/env python3
"""The three leaks of Figure 1, measured — and what annotations fix.

For each snippet (control-flow leak, data-flow leak, timing leak) the
demo runs the victim under an Untangle scheme for every secret value and
measures, with the idealized observer of Section 4, how many bits the
attacker actually learns:

* unannotated, Figures 1a/1b leak through the *action* part of the trace;
* with annotations, their action leakage drops to exactly zero;
* Figure 1c leaks only through *timing* — annotations cannot remove it,
  which is precisely why Untangle bounds it with the covert-channel
  model instead.

Run:  python examples/secret_leak_demo.py
"""

from repro.attacks.observer import measure_empirical_leakage
from repro.config import ArchConfig
from repro.core.covert import uniform_delay
from repro.core.rates import RmaxTable
from repro.core.trace import ResizingTrace
from repro.info.distributions import DiscreteDistribution
from repro.schemes.schedule import ProgressSchedule
from repro.schemes.untangle import UntangleScheme, default_channel_model
from repro.sim.cpu import CoreConfig
from repro.sim.system import DomainSpec, MultiDomainSystem
from repro.workloads import snippets

ARCH = ArchConfig.tiny(num_cores=1)
MODEL = default_channel_model(64, resolution_divisor=16)
TABLE = RmaxTable(MODEL, capacity=4)


def run_victim(stream) -> ResizingTrace:
    """One deterministic victim execution under Untangle.

    The snippet loops several times (like a server handling requests) so
    the scheme has enough assessments to react to its demand.
    """
    schedule = ProgressSchedule(
        instructions_per_assessment=400,
        cooldown=MODEL.cooldown,
        delay=uniform_delay(MODEL.cooldown, MODEL.resolution),
        seed=7,
    )
    scheme = UntangleScheme(ARCH, schedule, rmax_table=TABLE, monitor_window=1_000)
    config = CoreConfig(mlp=2.0, slice_instructions=stream.length * 8)
    system = MultiDomainSystem(
        ARCH, [DomainSpec("victim", stream, config)], scheme, quantum=64
    )
    system.run(max_cycles=2_000_000)
    return ResizingTrace.from_pairs(system.trace_logs[0])


def measure(name, build, secrets):
    print(f"\n--- {name} ---")
    for annotated in (False, True):
        leakage = measure_empirical_leakage(
            DiscreteDistribution.uniform(secrets),
            lambda secret: run_victim(build(secret, annotated)),
        )
        mode = "annotated  " if annotated else "unannotated"
        print(
            f"  {mode}: attacker learns {leakage.total_information_bits:.3f} bits "
            f"({leakage.action_information_bits:.3f} via actions)"
        )


def main() -> None:
    print("Empirical leakage of the Figure 1 snippets under Untangle")
    print("(secret entropy = 1 bit in each demo; values are what the")
    print(" idealized observer of Section 4 extracts)")

    measure(
        "Figure 1a: if (secret) traverse(arr)  [control-flow leak]",
        lambda secret, annotated: snippets.figure_1a(
            bool(secret), annotated=annotated, array_lines=96, padding=800
        ),
        [0, 1],
    )
    measure(
        "Figure 1b: access(arr[i * secret])  [data-flow leak]",
        lambda secret, annotated: snippets.figure_1b(
            secret, annotated=annotated, array_lines=96, padding=800
        ),
        [0, 1],
    )
    measure(
        "Figure 1c: if (secret) usleep(); traverse(arr)  [timing leak]",
        lambda secret, annotated: snippets.figure_1c(
            bool(secret), annotated=annotated, array_lines=96, padding=800,
            sleep_cycles=900,
        ),
        [0, 1],
    )

    rate = TABLE.rate(0)
    print("\nFigure 1c's residual timing leak is exactly what the covert-")
    print("channel model bounds: at this configuration the certified rate is")
    print(f"  R'_max = {rate * MODEL.cooldown:.3f} bits per cooldown,")
    print("charged at runtime by the leakage accountant (Section 7).")


if __name__ == "__main__":
    main()
