#!/usr/bin/env python3
"""Applying Untangle to a different resource: the TLB (Section 6.3).

"Untangle is a general framework and it can be applied to different
hardware resources. ... we can trivially extend the LLC utilization
metric to the TLB."

This example partitions a TLB between two domains. A TLB is just a
set-associative cache of page translations, so the substrate is reused
with page-granularity "line" addresses; the utilization metric is the
page footprint of the last N retired public memory instructions
(Section 5.2's timing-independent example metric), and the scheme is the
relative-action threshold heuristic under Untangle's principles.

The victim alternates between a small phase (few hot pages) and a large
phase (page-spanning scans); the demo shows the TLB partition tracking
the phase while the leakage accountant charges the certified
scheduling-leakage rate.

Run:  python examples/tlb_partitioning.py
"""

import numpy as np

from repro.config import ArchConfig
from repro.core.covert import uniform_delay
from repro.core.rates import RmaxTable
from repro.schemes.schedule import ProgressSchedule
from repro.schemes.threshold import ThresholdScheme
from repro.schemes.untangle import default_channel_model
from repro.sim.cpu import CoreConfig, InstructionStream
from repro.sim.system import DomainSpec, MultiDomainSystem

#: TLB geometry: model it as the machine's "LLC" with page-granularity
#: entries — a 128-entry, 4-way TLB partitioned between 2 domains.
TLB_ARCH = ArchConfig(
    num_cores=2,
    issue_width=4,
    l1_lines=8,              # a tiny L0 "micro-TLB" filter
    l1_associativity=4,
    llc_lines=128,
    llc_associativity=4,
    l1_latency=1,
    llc_latency=4,           # main TLB hit
    dram_latency=60,         # page-table walk
    supported_partition_lines=(8, 16, 32, 48, 64, 96),
    default_partition_lines=32,
)

COOLDOWN = 256


def phased_page_trace(instructions: int, seed: int) -> InstructionStream:
    """Alternate small-footprint and large-footprint page phases."""
    rng = np.random.default_rng(seed)
    addresses = np.full(instructions, -1, dtype=np.int64)
    phase_length = instructions // 8
    for phase in range(8):
        start = phase * phase_length
        slots = np.arange(start, start + phase_length, 3)
        pages = 6 if phase % 2 == 0 else 80
        addresses[slots] = rng.integers(0, pages, size=len(slots))
    return InstructionStream(addresses)


def main() -> None:
    print("Untangle-partitioned TLB (128 entries, 2 domains)")
    model = default_channel_model(COOLDOWN)
    table = RmaxTable(model, capacity=64)
    schedule = ProgressSchedule(
        instructions_per_assessment=1_000,
        cooldown=model.cooldown,
        delay=uniform_delay(model.cooldown, model.resolution),
        seed=3,
    )
    scheme = ThresholdScheme(
        TLB_ARCH,
        schedule,
        table,
        footprint_window=2_000,
        expand_fraction=0.85,
        shrink_fraction=0.5,
    )
    instructions = 40_000
    domains = [
        DomainSpec(
            "phased", phased_page_trace(instructions, seed=1),
            CoreConfig(mlp=1.5, slice_instructions=instructions),
        ),
        DomainSpec(
            "steady", phased_page_trace(instructions, seed=2),
            CoreConfig(mlp=1.5, slice_instructions=instructions),
        ),
    ]
    system = MultiDomainSystem(
        TLB_ARCH, domains, scheme, quantum=128, sample_interval=512
    )
    result = system.run(max_cycles=5_000_000)

    for domain in range(2):
        stats = result.stats[domain]
        minimum, q1, median, q3, maximum = stats.partition_size_quartiles()
        print(f"\ndomain {domain} ({domains[domain].name}):")
        print(f"  IPC                  {stats.ipc:.3f}")
        print(f"  TLB partition        min={minimum} q1={q1} median={median} "
              f"q3={q3} max={maximum} entries")
        print(f"  assessments          {stats.assessments} "
              f"({stats.visible_actions} visible)")
        print(f"  leakage              {stats.leakage_bits:.2f} bits "
              f"({stats.bits_per_assessment:.3f}/assessment)")

    print("\nThe same framework, metric style, and accountant as the LLC —")
    print("only the resource geometry changed (Section 6.3's claim).")


if __name__ == "__main__":
    main()
