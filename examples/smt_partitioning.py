#!/usr/bin/env python3
"""Untangle vs SecSMT-style accounting on SMT pipeline resources.

Section 6.3 names functional units shared by SMT threads as another
resource Untangle covers, with "the fraction of the retired instructions
that utilize a certain type of function unit" as the timing-independent
metric. The Related Work adds the punchline: in the peer model "SecSMT
only loosely bounds the leakage to 1 bit per assessment (for 2 possible
resizing actions) ... In contrast, Untangle's leakage bounds are much
tighter."

This example runs two SMT threads with phased unit demand over a shared
slot pool, resizes their partitions with the Section 6.3 metric on a
progress-based schedule, and accounts the SAME resizing trace two ways:

* SecSMT-style: a flat 1 bit at every assessment (conservative);
* Untangle: the Maintain-optimized covert-channel rate table.

Run:  python examples/smt_partitioning.py
"""

from repro.core.accountant import ConservativeAccountant, LeakageAccountant
from repro.core.rates import RmaxTable
from repro.schemes.untangle import default_channel_model
from repro.sim.smt import MixFractionMetric, SMTPipeline, synthetic_smt_workload

TOTAL_SLOTS = 8
ISSUE_WIDTH = 4
INSTRUCTIONS = 30_000
#: Progress-based schedule: assess every N retired instructions of the
#: victim thread; the cooldown ties the channel model to wall-clock.
ASSESS_EVERY = 1_000
COOLDOWN = 250


def main() -> None:
    print("SMT pipeline partitioning (8 slots, 2 threads)")
    pipeline = SMTPipeline(TOTAL_SLOTS, issue_width=ISSUE_WIDTH)
    workloads = [
        # The victim alternates compute-bound and unit-hungry phases.
        synthetic_smt_workload("victim", INSTRUCTIONS, 0.65, burstiness=4_000, seed=1),
        synthetic_smt_workload("other", INSTRUCTIONS, 0.30, burstiness=1, seed=2),
    ]
    metric = MixFractionMetric(window=800)
    model = default_channel_model(COOLDOWN)
    untangle_accounting = LeakageAccountant(RmaxTable(model, capacity=32))
    secsmt_accounting = ConservativeAccountant(num_actions=2)

    state = {"next_assessment": ASSESS_EVERY, "observed": 0, "resizes": 0}

    def on_cycle(cycle, pipe):
        victim = pipe.stats[0]
        demand = workloads[0].unit_demand
        # Feed the metric the newly retired instructions (architectural).
        while state["observed"] < victim.retired:
            metric.observe(int(demand[state["observed"]]))
            state["observed"] += 1
        if victim.retired >= state["next_assessment"]:
            state["next_assessment"] += ASSESS_EVERY
            want = max(
                1,
                min(
                    TOTAL_SLOTS - 1,
                    round(metric.fraction * ISSUE_WIDTH * 2),
                ),
            )
            current = pipe.quota_of(0)
            visible = want != current
            if visible:
                if want < current:  # shrink the victim, then grow the peer
                    pipe.set_quota(0, want)
                    pipe.set_quota(1, TOTAL_SLOTS - want)
                else:  # shrink the peer first to free the slots
                    pipe.set_quota(1, TOTAL_SLOTS - want)
                    pipe.set_quota(0, want)
                state["resizes"] += 1
            untangle_accounting.on_assessment(cycle, visible)
            secsmt_accounting.on_assessment(cycle, visible)

    stats = pipeline.run(workloads, max_cycles=200_000, on_cycle=on_cycle)

    for thread, stat in enumerate(stats):
        print(f"  thread {thread} ({workloads[thread].name:6s}): "
              f"IPC {stat.ipc:.2f}, full events {stat.full_events}")
    untangle = untangle_accounting.report()
    secsmt = secsmt_accounting.report()
    print(f"\nassessments: {untangle.assessments}, visible resizes: "
          f"{state['resizes']}, Maintain fraction {untangle.maintain_fraction:.2f}")
    print("\nleakage accounting of the SAME trace:")
    print(f"  SecSMT-style (1 bit/assessment):  {secsmt.total_bits:6.2f} bits "
          f"({secsmt.bits_per_assessment:.3f}/assessment)")
    print(f"  Untangle (rate table):            {untangle.total_bits:6.2f} bits "
          f"({untangle.bits_per_assessment:.3f}/assessment)")
    reduction = 1 - untangle.total_bits / max(secsmt.total_bits, 1e-9)
    print(f"  -> {reduction:.0%} tighter, same scheme behaviour "
          "(the Related Work comparison)")


if __name__ == "__main__":
    main()
