"""Appendix A: computing the maximum data rate R_max.

Benchmarks the Dinkelbach solve itself, regenerates the precomputed
R_max_i table of Section 7, and validates the certified bound against an
empirical covert-channel simulation and against the fixed strategies of
the Section 5.3.1 example.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.attacks.channel_sim import CovertChannelSimulator
from repro.core.covert import CovertChannelModel, uniform_delay
from repro.core.dinkelbach import solve_rmax
from repro.core.rates import RmaxTable
from repro.harness.runconfig import SCALED
from repro.schemes.untangle import default_channel_model, get_rate_table


def test_rmax_solve(benchmark, results_dir):
    model = default_channel_model(SCALED.cooldown)

    def run():
        return solve_rmax(model, inner_iterations=1000)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    uniform_rate = model.rate(model.uniform_input())
    text = (
        "Appendix A: maximum covert-channel data rate (T_c = 1 scaled ms)\n"
        f"  R'_max (achieved):      {result.rate * SCALED.cooldown:.4f} bits/T_c\n"
        f"  R'_max (certified UB):  {result.rate_upper_bound * SCALED.cooldown:.4f} bits/T_c\n"
        f"  bits per transmission:  {result.bits_per_transmission:.3f}\n"
        f"  avg transmission time:  {result.average_transmission_time / SCALED.cooldown:.2f} T_c\n"
        f"  uniform-input rate:     {uniform_rate * SCALED.cooldown:.4f} bits/T_c\n"
        f"  converged={result.converged} bound_verified={result.bound_verified}"
    )
    write_result(results_dir, "appendixA_rmax", text)

    assert result.converged and result.bound_verified
    # The optimized input beats the naive uniform strategy.
    assert result.rate >= uniform_rate
    # And the certificate is tight (within ~25% of the achieved rate).
    assert result.rate_upper_bound <= result.rate * 1.25


def test_rmax_table_generation(benchmark, results_dir):
    def run():
        get_rate_table.cache_clear()
        return get_rate_table(SCALED.cooldown)

    table: RmaxTable = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Section 7: precomputed R_max_i table (rates in bits per T_c)"]
    for entry in table.entries():
        lines.append(
            f"  m={entry.maintains:3d}  T'_c={entry.effective_cooldown // SCALED.cooldown:3d} T_c"
            f"  rate={entry.rate_upper_bound * SCALED.cooldown:8.4f}"
            f"  bits/tx={entry.bits_per_transmission:6.3f}"
        )
    write_result(results_dir, "appendixA_rmax_table", "\n".join(lines))

    rates = [e.rate_upper_bound for e in table.entries()]
    # Rates strictly decrease with the effective cooldown (Section 5.3.4).
    assert all(b < a for a, b in zip(rates, rates[1:]))
    # The decay is roughly 1/(m+1): entry 7's rate is ~1/8 of entry 0's,
    # modulo the slow logarithmic growth of bits per transmission.
    level_7 = table.entry(7).rate_upper_bound
    assert level_7 < 0.3 * rates[0]


def test_empirical_channel_respects_bound(benchmark, results_dir):
    """No simulated sender strategy beats the certified R'_max."""
    model = CovertChannelModel(
        cooldown=64, resolution=4, max_duration=256, delay=uniform_delay(64, 4)
    )
    solution = solve_rmax(model, inner_iterations=400)

    def run():
        rows = []
        rng = np.random.default_rng(0)
        strategies = {
            "optimal": solution.input_distribution,
            "uniform": model.uniform_input(),
        }
        for i in range(3):
            strategies[f"random{i}"] = rng.dirichlet(np.ones(model.num_inputs))
        for name, p in strategies.items():
            simulator = CovertChannelSimulator(model, seed=42)
            outcome = simulator.transmit(p, 3_000)
            rows.append((name, outcome.empirical_rate, outcome.decode_accuracy))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Empirical covert-channel rates vs certified bound "
        f"(bound = {solution.rate_upper_bound * 64:.3f} bits/T_c)"
    ]
    for name, rate, accuracy in rows:
        lines.append(
            f"  {name:10s} rate={rate * 64:7.3f} bits/T_c  decode={accuracy:.2f}"
        )
    write_result(results_dir, "appendixA_empirical", "\n".join(lines))
    for name, rate, _ in rows:
        assert rate <= solution.rate_upper_bound * 1.5, name
