"""Kernel microbenchmarks: batched vs reference simulation kernel.

Measures the two layers the batched kernel optimizes and writes the
results to ``BENCH_kernel.json`` at the repository root:

* **raw cache kernel** — ``access_run`` over a fixed synthetic trace on
  the packed-recency :class:`~repro.sim.cache.SetAssociativeCache`
  versus the list-based
  :class:`~repro.sim.cache.ReferenceSetAssociativeCache`, in ns/access;
* **end-to-end single cell** — one ``(mix, scheme)`` simulation cell per
  scheme under the ``bench`` profile
  (:data:`~repro.harness.runconfig.BENCH`), run with
  ``REPRO_SIM_KERNEL=reference`` and ``=batched``, asserting the two
  kernels produce bit-identical results before reporting the speedup.

Methodology: wall-clock on a shared machine is noisy, so each
measurement interleaves reference/batched repetitions (ref, bat, ref,
bat, ...) and reports the per-mode minimum — the interleaving exposes
both modes to the same drift, and the minimum estimates the uncontended
cost. The recorded *speedups* (reference/batched on the same host) are
the machine-independent quantity that the perf regression check
(:mod:`repro.harness.perfbaseline`, CI ``perf-smoke`` job) compares
against the committed baseline.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py            # full run
    PYTHONPATH=src python benchmarks/bench_kernel.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_kernel.py --output /tmp/b.json

This is a standalone script, not a pytest benchmark: it must control
kernel selection through the environment and interleave whole
simulations, which does not fit the one-shot ``benchmark.pedantic``
cells of the other drivers (and it defines no ``test_`` functions, so
pytest collects nothing from it).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.sim.cache import (  # noqa: E402
    ReferenceSetAssociativeCache,
    SetAssociativeCache,
)
from repro.sim.kernelmode import KERNEL_ENV  # noqa: E402

#: Where the results land (the committed perf baseline).
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_kernel.json"

#: Schemes timed end-to-end (Table 4's four organizations).
SCHEMES = ("static", "shared", "time", "untangle")

#: JSON layout version, checked by :mod:`repro.harness.perfbaseline`.
FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Raw cache kernel
# ----------------------------------------------------------------------
def synthetic_trace(accesses: int, seed: int = 2023) -> np.ndarray:
    """A fixed LLC-like trace: hot working set + streaming misses.

    80% of accesses draw from a hot set comparable to the cache capacity
    (mostly hits, exercising the recency update), 20% stream through a
    large cold range (misses + evictions).
    """
    rng = np.random.default_rng(seed)
    hot = rng.integers(0, 3_000, size=accesses)
    cold = rng.integers(100_000, 1_000_000, size=accesses)
    pick_cold = rng.random(accesses) < 0.2
    return np.where(pick_cold, cold, hot).astype(np.int64)


def bench_raw_kernel(accesses: int, reps: int) -> dict:
    """Time ``access_run`` on both cache implementations, interleaved."""
    num_sets, associativity = 256, 8  # the scaled 2048-line LLC
    addrs = synthetic_trace(accesses)
    timings: dict[str, list[float]] = {"reference": [], "batched": []}
    hits: dict[str, int] = {}
    for _ in range(reps):
        for mode, cls in (
            ("reference", ReferenceSetAssociativeCache),
            ("batched", SetAssociativeCache),
        ):
            cache = cls(num_sets, associativity)
            start = time.perf_counter()
            hit_mask, _ = cache.access_run(addrs)
            timings[mode].append(time.perf_counter() - start)
            hits[mode] = int(np.count_nonzero(hit_mask))
    if hits["reference"] != hits["batched"]:
        raise AssertionError(
            f"raw kernels disagree: reference {hits['reference']} hits, "
            f"batched {hits['batched']} hits"
        )
    ref = min(timings["reference"])
    bat = min(timings["batched"])
    return {
        "num_sets": num_sets,
        "associativity": associativity,
        "accesses": accesses,
        "hits": hits["batched"],
        "reference_ns_per_access": ref / accesses * 1e9,
        "batched_ns_per_access": bat / accesses * 1e9,
        "speedup": ref / bat,
    }


# ----------------------------------------------------------------------
# End-to-end single cell per scheme
# ----------------------------------------------------------------------
def _run_cell(pairs, scheme, profile, mode: str):
    """One simulation cell under the given kernel; returns (seconds, result)."""
    from repro.harness.experiment import run_mix_scheme

    os.environ[KERNEL_ENV] = mode
    try:
        start = time.perf_counter()
        result = run_mix_scheme(pairs, scheme, profile)
        return time.perf_counter() - start, result
    finally:
        os.environ.pop(KERNEL_ENV, None)


def _fingerprint(result) -> dict:
    """Everything the equivalence claim covers, JSON-able for the report."""
    return {
        "total_cycles": result.total_cycles,
        "ipc": [w.ipc for w in result.workloads],
        "leakage_bits": [w.leakage_bits for w in result.workloads],
        "assessments": [w.assessments for w in result.workloads],
    }


def bench_end_to_end(mix_id: int, num_pairs: int, reps: int) -> dict:
    from repro.harness.runconfig import BENCH
    from repro.schemes.untangle import get_rate_table
    from repro.workloads.mixes import get_mix

    pairs = get_mix(mix_id)[:num_pairs]
    # The Dinkelbach solver behind Untangle's rate table runs once per
    # process (~seconds) and is lru_cached; warm it so neither mode's
    # first repetition pays it inside the timed region.
    get_rate_table(BENCH.cooldown)

    cells: dict[str, dict] = {}
    for scheme in SCHEMES:
        ref_times: list[float] = []
        bat_times: list[float] = []
        ref_result = bat_result = None
        for _ in range(reps):
            seconds, ref_result = _run_cell(pairs, scheme, BENCH, "reference")
            ref_times.append(seconds)
            seconds, bat_result = _run_cell(pairs, scheme, BENCH, "batched")
            bat_times.append(seconds)
        identical = _fingerprint(ref_result) == _fingerprint(bat_result)
        if not identical:
            raise AssertionError(
                f"kernels diverge on scheme {scheme!r}: "
                f"reference {_fingerprint(ref_result)} vs "
                f"batched {_fingerprint(bat_result)}"
            )
        ref = min(ref_times)
        bat = min(bat_times)
        cells[scheme] = {
            "reference_seconds": ref,
            "batched_seconds": bat,
            "speedup": ref / bat,
            "identical": identical,
            "fingerprint": _fingerprint(bat_result),
        }
        print(
            f"  {scheme:10s} ref={ref:6.2f}s bat={bat:6.2f}s "
            f"speedup={ref / bat:5.2f}x identical={identical}",
            flush=True,
        )
    return {
        "profile": BENCH.name,
        "mix": mix_id,
        "pairs": num_pairs,
        "cells": cells,
    }


# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the batched simulation kernel vs the reference."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: fewer repetitions and a shorter raw trace "
        "(same simulation cells, so speedups stay comparable)",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=None,
        help="interleaved reference/batched repetitions per measurement "
        "(default: 3, or 2 with --quick)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"result JSON path (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)
    reps = args.reps or (2 if args.quick else 3)
    accesses = 50_000 if args.quick else 200_000

    print(f"raw cache kernel ({accesses} accesses, min of {reps}):", flush=True)
    raw = bench_raw_kernel(accesses, reps)
    print(
        f"  reference {raw['reference_ns_per_access']:7.1f} ns/access   "
        f"batched {raw['batched_ns_per_access']:7.1f} ns/access   "
        f"speedup={raw['speedup']:5.2f}x",
        flush=True,
    )

    print(f"end-to-end cells (profile=bench, min of {reps}):", flush=True)
    end_to_end = bench_end_to_end(mix_id=1, num_pairs=4, reps=reps)

    payload = {
        "format": FORMAT_VERSION,
        "quick": args.quick,
        "reps": reps,
        "raw_kernel": raw,
        "end_to_end": end_to_end,
    }
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[written to {args.output}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
