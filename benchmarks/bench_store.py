"""Precompute-store benchmark: disabled vs cold vs warm campaigns.

Measures what the cross-cell precompute store (``repro.harness.store``)
buys on a real multi-mix campaign and writes the results to
``BENCH_store.json`` at the repository root:

* **disabled** — ``REPRO_PRECOMPUTE=off``: the legacy path, every cell
  recomposes its workload traces and every worker process re-runs the
  Dinkelbach solver behind Untangle's rate table;
* **cold** — store enabled against an empty directory: populate composes
  each distinct trace once and solves the rate table once, then every
  cell attaches zero-copy;
* **warm** — the same directory again: a second campaign session, which
  must regenerate *nothing* (zero workload compositions, zero solves —
  asserted from the engine's telemetry, not assumed).

The campaign is mixes 1-4 under all four Table 4 schemes with
``--jobs 4`` and the result cache/journal disabled, so every cell
simulates and the only sharing is the store's. Untangle cells are
ordered first: the engine hands the first ``jobs`` cells to distinct
workers, so the disabled mode demonstrably pays one rate-table solve
*per worker* while the store modes pay exactly one in populate.

Methodology: each mode runs in a fresh child process (clean memoizers,
clean metrics registry — exactly how real sessions behave), repetitions
are interleaved (disabled, cold, warm, disabled, ...) so all modes see
the same machine drift, and the per-mode minimum is reported. The
recorded *speedups* (disabled/cold and disabled/warm on the same host)
are the machine-independent quantities the perf regression check
(:mod:`repro.harness.perfbaseline`, CI ``perf-smoke`` job) compares.
Results are required to be bit-identical across all modes and reps.

Usage::

    PYTHONPATH=src python benchmarks/bench_store.py            # full run
    PYTHONPATH=src python benchmarks/bench_store.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_store.py --output /tmp/b.json

Standalone script (not a pytest benchmark): each measurement needs its
own child interpreter and environment, which does not fit
``benchmark.pedantic`` cells; it defines no ``test_`` functions.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Where the results land (the committed perf baseline).
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_store.json"

#: The campaign grid: every Table 4 scheme over the Table 6 mixes.
MIXES = (1, 2, 3, 4)
SCHEMES = ("untangle", "static", "time", "shared")
JOBS = 4

#: JSON layout version, checked by :mod:`repro.harness.perfbaseline`.
FORMAT_VERSION = 1

#: Telemetry keys shipped from the child for the report/assertions.
TELEMETRY_KEYS = (
    "workload_builds",
    "rmax_solves",
    "store_trace_hits",
    "store_trace_misses",
    "store_trace_bytes",
    "store_rmax_hits",
    "store_rmax_misses",
    "store_quarantines",
)


# ----------------------------------------------------------------------
# Child: one measured campaign in a clean interpreter
# ----------------------------------------------------------------------
def run_campaign(mode: str, store_dir: str | None, num_pairs: int) -> dict:
    """Execute the grid once; returns wall, fingerprint, telemetry."""
    from repro.harness.exec import ExecutionEngine, MixSchemeCell
    from repro.harness.runconfig import BENCH
    from repro.harness.store import PrecomputeStore
    from repro.workloads.mixes import get_mix

    cells = [
        MixSchemeCell(
            pairs=tuple(get_mix(mix_id)[:num_pairs]),
            scheme=scheme,
            profile=BENCH,
        )
        # Scheme-major order puts the untangle cells first: the engine
        # assigns the first ``jobs`` pending cells to distinct workers,
        # so the disabled mode pays the solve once per worker.
        for scheme in SCHEMES
        for mix_id in MIXES
    ]
    store = None if mode == "disabled" else PrecomputeStore(store_dir)
    engine = ExecutionEngine(jobs=JOBS, store=store)
    start = time.perf_counter()
    outcomes = engine.run(cells)
    wall = time.perf_counter() - start
    if not all(outcome.status == "computed" for outcome in outcomes):
        bad = [o.label for o in outcomes if o.status != "computed"]
        raise AssertionError(f"cells did not compute: {bad}")
    snap = engine.telemetry.snapshot()
    return {
        "wall": wall,
        "fingerprint": {
            outcome.cell.label: MixSchemeCell.encode(outcome.value)
            for outcome in outcomes
        },
        "telemetry": {key: snap[key] for key in TELEMETRY_KEYS},
    }


def _child_main(args) -> int:
    if args.mode == "disabled":
        os.environ["REPRO_PRECOMPUTE"] = "off"
    report = run_campaign(args.mode, args.store_dir, args.pairs)
    json.dump(report, sys.stdout)
    return 0


# ----------------------------------------------------------------------
# Parent: interleave child measurements
# ----------------------------------------------------------------------
def _measure(mode: str, store_dir: str | None, num_pairs: int) -> dict:
    env = dict(os.environ)
    for name in ("REPRO_PRECOMPUTE", "REPRO_STORE_DIR", "REPRO_STORE_SHM"):
        env.pop(name, None)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    command = [
        sys.executable,
        str(Path(__file__).resolve()),
        "--child",
        mode,
        "--pairs",
        str(num_pairs),
    ]
    if store_dir is not None:
        command += ["--store-dir", store_dir]
    result = subprocess.run(
        command, capture_output=True, text=True, env=env, timeout=3600
    )
    if result.returncode != 0:
        raise AssertionError(
            f"{mode} campaign failed:\n{result.stderr}"
        )
    return json.loads(result.stdout)


def bench_store(num_pairs: int, reps: int, scratch: Path) -> dict:
    walls: dict[str, list[float]] = {"disabled": [], "cold": [], "warm": []}
    telemetry: dict[str, dict] = {}
    fingerprints: list = []

    for rep in range(reps):
        store_dir = str(scratch / f"store-{rep}")  # cold = empty every rep
        for mode in ("disabled", "cold", "warm"):
            report = _measure(
                mode, None if mode == "disabled" else store_dir, num_pairs
            )
            walls[mode].append(report["wall"])
            telemetry[mode] = report["telemetry"]
            fingerprints.append((mode, report["fingerprint"]))
            print(
                f"  rep {rep + 1}/{reps} {mode:8s} {report['wall']:6.2f}s  "
                f"builds={report['telemetry']['workload_builds']:3d} "
                f"solves={report['telemetry']['rmax_solves']:3d}",
                flush=True,
            )

    reference = fingerprints[0][1]
    identical = all(fp == reference for _, fp in fingerprints)
    if not identical:
        divergent = sorted({mode for mode, fp in fingerprints if fp != reference})
        raise AssertionError(f"campaign results diverge across modes: {divergent}")
    warm_telemetry = telemetry["warm"]
    if warm_telemetry["workload_builds"] or warm_telemetry["rmax_solves"]:
        raise AssertionError(
            "warm campaign regenerated inputs: "
            f"{warm_telemetry['workload_builds']} workload builds, "
            f"{warm_telemetry['rmax_solves']} rmax solves"
        )

    disabled = min(walls["disabled"])
    cold = min(walls["cold"])
    warm = min(walls["warm"])
    return {
        "campaign": {
            "profile": "bench",
            "mixes": list(MIXES),
            "schemes": list(SCHEMES),
            "pairs": num_pairs,
            "jobs": JOBS,
            "cells": len(MIXES) * len(SCHEMES),
        },
        "disabled": {
            "seconds": disabled,
            "telemetry": telemetry["disabled"],
        },
        "cold": {
            "seconds": cold,
            "speedup": disabled / cold,
            "identical": identical,
            "telemetry": telemetry["cold"],
        },
        "warm": {
            "seconds": warm,
            "speedup": disabled / warm,
            "identical": identical,
            "telemetry": warm_telemetry,
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the precompute store: disabled vs cold vs warm."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: 2 pairs per mix and fewer repetitions (same "
        "grid shape — 4 untangle cells on 4 workers — so the disabled "
        "mode's redundant solves stay visible and speedups comparable)",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=None,
        help="interleaved repetitions per mode (default: 3, or 2 with --quick)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"result JSON path (default: {DEFAULT_OUTPUT})",
    )
    # Internal: run one campaign in this process and print its report.
    parser.add_argument("--child", dest="mode", choices=("disabled", "cold", "warm"))
    parser.add_argument("--store-dir", default=None)
    parser.add_argument("--pairs", type=int, default=None)
    args = parser.parse_args(argv)
    if args.mode:
        return _child_main(args)

    reps = args.reps or (2 if args.quick else 3)
    num_pairs = 2 if args.quick else 4
    print(
        f"store campaign ({len(MIXES)} mixes x {len(SCHEMES)} schemes, "
        f"{num_pairs} pairs, jobs={JOBS}, min of {reps}):",
        flush=True,
    )
    with tempfile.TemporaryDirectory(prefix="bench-store-") as scratch:
        results = bench_store(num_pairs, reps, Path(scratch))

    for mode in ("disabled", "cold", "warm"):
        entry = results[mode]
        speedup = (
            f"  speedup={entry['speedup']:5.2f}x" if "speedup" in entry else ""
        )
        print(f"  {mode:8s} {entry['seconds']:6.2f}s{speedup}", flush=True)

    payload = {
        "format": FORMAT_VERSION,
        "kind": "store",
        "quick": args.quick,
        "reps": reps,
        **results,
    }
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[written to {args.output}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
