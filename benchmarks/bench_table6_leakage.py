"""Table 6: leakage of Mixes 1-4 under Time and Untangle.

Average leakage per assessment and average total leakage per workload,
plus the paper's headline: Untangle leaks ~78% less per assessment.

Reuses the Figure 10 runs through the engine-backed ``mix_cache`` —
in one session via its in-memory dict, across sessions via the on-disk
result cache — exactly as the paper derives Table 6 from the same
experiments.
"""

from benchmarks.conftest import FIGURE_SCHEMES, write_result
from repro.harness.tables import Table6, table6_row
from repro.harness.report import render_table6


def test_table6(benchmark, mix_cache, results_dir):
    def run():
        rows = []
        for mix_id in (1, 2, 3, 4):
            rows.append(table6_row(mix_id, mix_cache(mix_id, FIGURE_SCHEMES)))
        return Table6(rows=rows)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(results_dir, "table6_leakage", render_table6(table))

    # Shape checks against the paper's Table 6.
    for row in table.rows:
        # Time: log2(9) = 3.17 bits per assessment for every workload.
        assert abs(row.time_bits_per_assessment - 3.17) < 0.01
        # Untangle's per-assessment leakage sits in the paper's band.
        assert row.untangle_bits_per_assessment < 2.0
        # Totals follow the same ordering.
        assert row.untangle_total_bits < row.time_total_bits
    # Headline: a large average reduction (paper reports 78%).
    assert table.average_reduction > 0.6
    # Leakage grows with LLC pressure across mixes 1 -> 4 (paper trend),
    # at least between the extremes.
    assert (
        table.rows[3].untangle_total_bits >= table.rows[0].untangle_total_bits * 0.8
    )
