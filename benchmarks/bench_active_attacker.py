"""Section 9's active-attacker study: unoptimized vs optimized accounting.

"We measure the leakage under Untangle without the optimized covert
channel model ... the average leakage per assessment is 3.8 bits ...
higher than with the optimization (0.7 bits)."

The unoptimized accounting (worst-case rate table of capacity 1) models
an attacker who forces an attacker-visible action at every assessment;
the benchmark also demonstrates the squeeze workload itself.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.attacks.active import squeezing_workload
from repro.harness.report import render_active_attacker
from repro.harness.runconfig import SCALED
from repro.harness.tables import active_attacker_summary
from repro.harness.experiment import make_scheme
from repro.sim.system import DomainSpec, MultiDomainSystem
from repro.workloads.workload import build_workload


def test_active_attacker_accounting(benchmark, results_dir, engine):
    def run():
        return active_attacker_summary(SCALED, mix_ids=(1, 4), engine=engine)

    summary = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        results_dir, "active_attacker", render_active_attacker(summary)
    )
    # Unoptimized accounting charges a multiple of the optimized rate
    # (paper: 3.8 vs 0.7 bits — about 5x).
    assert summary.unoptimized_bits_per_assessment > (
        2.0 * summary.optimized_bits_per_assessment
    )
    # Even unoptimized, the bound stays in a sane range.
    assert summary.unoptimized_bits_per_assessment < 20.0


def test_squeezing_attacker_forces_visible_actions(benchmark, results_dir):
    """Figure 9: pulsing co-runners force the victim to resize more often.

    A single attacker cannot overcommit the LLC (the size alphabet caps
    any domain at the 8 MB-equivalent), so the squeeze uses two attacker
    domains whose high-rate pulses alternately claim capacity and
    release it — shrinking the victim's feasible allocation during
    pulses and letting it re-expand between them.
    """

    def run():
        profile = SCALED
        arch = profile.arch(3)
        victim = build_workload(
            "parest_0", "AES-128", profile.workload_scale, seed=profile.seed
        )
        results = {}
        for attacker_on in (False, True):
            domains = [
                DomainSpec(victim.label, victim.stream, victim.core_config)
            ]
            for index in range(2):
                if attacker_on:
                    stream, config = squeezing_workload(
                        total_instructions=victim.stream.length,
                        working_set_lines=1_100,
                        memory_fraction=0.9,
                        pulse_instructions=victim.stream.length // 6,
                        idle_stall_cycles=1,
                        mlp=8.0,
                        seed=1 + index * 7,
                    )
                else:
                    quiet = np.full(
                        victim.stream.length, -1, dtype=np.int64
                    )
                    from repro.sim.cpu import CoreConfig, InstructionStream

                    stream = InstructionStream(quiet)
                    config = CoreConfig(
                        mlp=2.0, slice_instructions=len(quiet)
                    )
                domains.append(DomainSpec(f"attacker{index}", stream, config))
            scheme = make_scheme("untangle", profile, 3)
            system = MultiDomainSystem(
                arch, domains, scheme, quantum=profile.quantum
            )
            system.run(max_cycles=profile.max_cycles)
            stats = system.stats[0]
            results[attacker_on] = (
                stats.visible_actions,
                stats.leakage_bits,
                stats.assessments,
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    quiet_visible, quiet_bits, quiet_assess = results[False]
    squeezed_visible, squeezed_bits, squeezed_assess = results[True]
    text = (
        "Active squeezing attackers vs quiet co-runners (victim: parest_0+AES-128)\n"
        f"  quiet co-runners: {quiet_visible} visible / {quiet_assess} assessments, "
        f"{quiet_bits:.1f} bits total\n"
        f"  squeezing:        {squeezed_visible} visible / {squeezed_assess} assessments, "
        f"{squeezed_bits:.1f} bits total"
    )
    write_result(results_dir, "active_squeeze", text)
    # The attack drives MORE visible victim resizes and leakage charges
    # (faster budget burn) but can never create action leakage (§6.2).
    assert squeezed_visible >= quiet_visible
    assert squeezed_bits >= quiet_bits * 0.9
