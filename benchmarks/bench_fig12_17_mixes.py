"""Figures 12-17 (Appendix B): Mixes 5-16 under the four schemes.

The full-evaluation counterpart of Figure 10: the remaining twelve mixes,
two figure groups per appendix figure.

Like Figure 10, every (mix, scheme) cell flows through the session
execution engine — ``REPRO_JOBS`` parallelizes, and warm re-runs are
pure cache hits from ``benchmarks/results/.cache``.
"""

import pytest

from benchmarks.conftest import FIGURE_SCHEMES, write_result
from repro.harness.figures import figure_group
from repro.harness.report import render_figure_group
from repro.harness.runconfig import SCALED

#: Paper figure number for each appendix mix.
APPENDIX_FIGURES = {
    5: 12, 6: 12, 7: 13, 8: 13, 9: 14, 10: 14,
    11: 15, 12: 15, 13: 16, 14: 16, 15: 17, 16: 17,
}


@pytest.mark.parametrize("mix_id", sorted(APPENDIX_FIGURES))
def test_appendix_mix(benchmark, mix_id, mix_cache, results_dir):
    def run():
        return mix_cache(mix_id, FIGURE_SCHEMES)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    group = figure_group(mix_id, SCALED, mix_result=result)
    figure_number = APPENDIX_FIGURES[mix_id]
    write_result(
        results_dir,
        f"figure{figure_number}_mix{mix_id}",
        render_figure_group(group),
    )

    untangle_run = result.runs["untangle"]
    time_run = result.runs["time"]
    # Untangle always leaks less per assessment than Time's log2(9).
    assert (
        untangle_run.mean_bits_per_assessment
        < time_run.mean_bits_per_assessment
    )
    # Both dynamic schemes at least match Static overall.
    assert result.geomean_speedup("untangle") > 0.95
    assert result.geomean_speedup("time") > 0.95
