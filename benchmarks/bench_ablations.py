"""Ablation benches for the design choices DESIGN.md calls out.

Not paper figures — these sweep the knobs Untangle exposes and verify
the direction of each trade-off the paper argues qualitatively:

* cooldown T_c: longer cooldown -> lower leakage rate (Mechanism 1);
* random delay: removing it raises the channel rate (Mechanism 2);
* attacker timing resolution: finer resolution -> higher rate;
* monitor window M_w: affects performance, never leakage accounting;
* schedule: Time's conservative charge vs Untangle's measured charge.
"""

import pytest

from benchmarks.conftest import write_result
from repro.core.covert import CovertChannelModel, no_delay, uniform_delay
from repro.core.dinkelbach import solve_rmax
from repro.harness.experiment import run_custom_mix
from repro.harness.runconfig import SCALED

ABLATION_PAIRS = [
    ("parest_0", "AES-128"), ("gcc_1", "AES-256"),
    ("imagick_0", "Chacha20"), ("xz_0", "EdDSA"),
    ("mcf_0", "RSA-2048"), ("deepsjeng_0", "RSA-4096"),
    ("namd_0", "ECDSA"), ("povray_0", "SHA-256"),
]


def test_cooldown_sweep(benchmark, results_dir):
    """Mechanism 1: R'_max falls as T_c grows."""

    def run():
        rows = []
        for cooldown in (512, 1_024, 2_048, 4_096, 8_192):
            resolution = cooldown // 16
            model = CovertChannelModel(
                cooldown=cooldown,
                resolution=resolution,
                max_duration=4 * cooldown,
                delay=uniform_delay(cooldown, resolution),
            )
            result = solve_rmax(model, inner_iterations=300)
            rows.append((cooldown, result.rate_upper_bound))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: cooldown sweep (Mechanism 1)"]
    for cooldown, rate in rows:
        lines.append(
            f"  T_c={cooldown:6d} cycles  R'_max={rate * 1e3:8.4f} mbits/cycle"
            f"  ({rate * cooldown:.3f} bits/T_c)"
        )
    write_result(results_dir, "ablation_cooldown", "\n".join(lines))
    rates = [rate for _, rate in rows]
    assert all(b < a for a, b in zip(rates, rates[1:]))


def test_delay_distribution_ablation(benchmark, results_dir):
    """Mechanism 2: the random delay shrinks the channel rate."""

    def run():
        cooldown, resolution = 2_048, 128
        results = {}
        delays = {
            "none": no_delay(),
            "uniform[0,Tc/2)": uniform_delay(cooldown // 2, resolution),
            "uniform[0,Tc)": uniform_delay(cooldown, resolution),
        }
        for name, delay in delays.items():
            model = CovertChannelModel(
                cooldown=cooldown,
                resolution=resolution,
                max_duration=4 * cooldown,
                delay=delay,
            )
            results[name] = solve_rmax(model, inner_iterations=300)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: random-delay distribution (Mechanism 2)"]
    for name, result in results.items():
        lines.append(
            f"  delay={name:18s} R'_max={result.rate_upper_bound * 2048:.3f} bits/T_c"
        )
    write_result(results_dir, "ablation_delay", "\n".join(lines))
    assert (
        results["uniform[0,Tc)"].rate_upper_bound
        < results["uniform[0,Tc/2)"].rate_upper_bound
        < results["none"].rate_upper_bound
    )


def test_attacker_resolution_ablation(benchmark, results_dir):
    """A finer-grained attacker extracts more bits per transmission."""

    def run():
        cooldown = 2_048
        rows = []
        for divisor in (4, 8, 16, 32):
            resolution = cooldown // divisor
            model = CovertChannelModel(
                cooldown=cooldown,
                resolution=resolution,
                max_duration=4 * cooldown,
                delay=uniform_delay(cooldown, resolution),
            )
            rows.append((divisor, solve_rmax(model, inner_iterations=300)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: attacker timing resolution (T_c / divisor)"]
    for divisor, result in rows:
        lines.append(
            f"  divisor={divisor:3d}  R'_max={result.rate_upper_bound * 2048:.3f} bits/T_c"
        )
    write_result(results_dir, "ablation_resolution", "\n".join(lines))
    rates = [r.rate_upper_bound for _, r in rows]
    assert rates[-1] > rates[0]  # finer resolution, higher rate


def test_monitor_window_ablation(benchmark, results_dir, engine):
    """M_w affects allocation quality; leakage accounting is untouched."""
    import dataclasses

    def run():
        rows = []
        for window in (1_000, 4_000, 16_000):
            profile = dataclasses.replace(SCALED, monitor_window=window)
            result = run_custom_mix(
                ABLATION_PAIRS, profile, schemes=("static", "untangle"),
                engine=engine,
            )
            untangle = result.runs["untangle"]
            rows.append(
                (
                    window,
                    result.geomean_speedup("untangle"),
                    untangle.mean_bits_per_assessment,
                    untangle.maintain_fraction,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: monitor window M_w (8-workload custom mix)"]
    for window, speedup, bits, maintain in rows:
        lines.append(
            f"  M_w={window:6d}  speedup={speedup:.3f}  "
            f"bits/assessment={bits:.3f}  maintain={maintain:.2f}"
        )
    write_result(results_dir, "ablation_window", "\n".join(lines))
    for _, speedup, bits, _ in rows:
        assert speedup > 0.9
        assert bits < 3.17  # always below the conservative charge


def test_debounce_ablation(benchmark, results_dir, engine):
    """The two-assessment debounce trades reaction time for fewer resizes."""
    import dataclasses

    def run():
        # Hysteresis 0 vs the default: with zero hysteresis the allocator
        # chases noise harder; visible-action counts should not collapse.
        rows = []
        for hysteresis in (0.0, SCALED.hysteresis, 0.2):
            profile = dataclasses.replace(SCALED, hysteresis=hysteresis)
            result = run_custom_mix(
                ABLATION_PAIRS, profile, schemes=("static", "untangle"),
                engine=engine,
            )
            untangle = result.runs["untangle"]
            rows.append(
                (
                    hysteresis,
                    result.geomean_speedup("untangle"),
                    untangle.maintain_fraction,
                    untangle.mean_bits_per_assessment,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: allocator hysteresis"]
    for hysteresis, speedup, maintain, bits in rows:
        lines.append(
            f"  hysteresis={hysteresis:5.2f}  speedup={speedup:.3f}  "
            f"maintain={maintain:.2f}  bits/assessment={bits:.3f}"
        )
    write_result(results_dir, "ablation_hysteresis", "\n".join(lines))
    maintains = [m for _, _, m, _ in rows]
    # More hysteresis -> never fewer Maintains.
    assert maintains[-1] >= maintains[0] - 0.05


def test_partition_organization_ablation(benchmark, results_dir):
    """Set partitioning (the paper's choice) vs classic way partitioning.

    Same machine capacity, same Untangle scheme, two LLC organizations.
    Way granularity is one way (1 MB-equivalent) versus set
    partitioning's finer 128 kB-equivalent steps — coarser adaptation,
    and different conflict behaviour at equal capacity.
    """
    import numpy as np

    from repro.config import ArchConfig
    from repro.core.covert import uniform_delay
    from repro.schemes.schedule import ProgressSchedule
    from repro.schemes.static import StaticScheme
    from repro.schemes.untangle import UntangleScheme
    from repro.sim.system import DomainSpec, MultiDomainSystem
    from repro.workloads.workload import build_workload

    arch = ArchConfig(
        num_cores=4,
        llc_lines=2048,
        llc_associativity=16,
        supported_partition_lines=(128, 256, 384, 512, 768, 1024),
        default_partition_lines=256,
    )
    pairs = [
        ("parest_0", "AES-128"), ("gcc_1", "AES-256"),
        ("imagick_0", "Chacha20"), ("mcf_0", "SHA-256"),
    ]
    workloads = [
        build_workload(s, c, SCALED.workload_scale, seed=SCALED.seed + i)
        for i, (s, c) in enumerate(pairs)
    ]
    domains = [DomainSpec(w.label, w.stream, w.core_config) for w in workloads]

    def run():
        rows = []
        for organization in ("set", "way"):
            static = StaticScheme(arch, organization=organization)
            static_system = MultiDomainSystem(
                arch, domains, static, quantum=SCALED.quantum
            )
            static_result = static_system.run(max_cycles=SCALED.max_cycles)
            schedule = ProgressSchedule(
                SCALED.untangle_instructions,
                SCALED.cooldown,
                uniform_delay(SCALED.cooldown, SCALED.cooldown // 16),
                seed=SCALED.seed,
            )
            scheme = UntangleScheme(
                arch,
                schedule,
                monitor_window=SCALED.monitor_window,
                hysteresis=SCALED.hysteresis,
                organization=organization,
            )
            system = MultiDomainSystem(
                arch, domains, scheme, quantum=SCALED.quantum
            )
            result = system.run(max_cycles=SCALED.max_cycles)
            ratios = [
                u.ipc / s.ipc
                for u, s in zip(result.stats, static_result.stats)
                if s.ipc > 0
            ]
            speedup = float(np.exp(np.mean(np.log(ratios))))
            bits = [
                s.bits_per_assessment for s in result.stats if s.assessments
            ]
            rows.append((organization, speedup, sum(bits) / len(bits)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: LLC organization (Untangle, 4-workload mix)"]
    for organization, speedup, bits in rows:
        lines.append(
            f"  {organization:4s} partitioning: speedup={speedup:.3f}  "
            f"bits/assessment={bits:.3f}"
        )
    write_result(results_dir, "ablation_organization", "\n".join(lines))
    for _, speedup, bits in rows:
        assert speedup > 0.9
        assert bits < 3.17


def test_time_interval_sweep(benchmark, results_dir, engine):
    """Section 3.3's prior mitigation: coarsen the resizing granularity.

    Lengthening Time's assessment interval cuts total leakage linearly
    (fewer assessments x the same log2|A| charge) but costs adaptivity —
    the trade-off Untangle's tighter accounting avoids.
    """
    import dataclasses

    def run():
        rows = []
        for interval in (2_000, 4_000, 8_000, 16_000):
            profile = dataclasses.replace(SCALED, time_interval=interval)
            result = run_custom_mix(
                ABLATION_PAIRS, profile, schemes=("static", "time"),
                engine=engine,
            )
            time_run = result.runs["time"]
            total_assessments = sum(w.assessments for w in time_run.workloads)
            rows.append(
                (
                    interval,
                    result.geomean_speedup("time"),
                    time_run.mean_total_leakage,
                    total_assessments,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation: Time assessment-interval sweep (Section 3.3 mitigation)"]
    for interval, speedup, total_bits, assessments in rows:
        lines.append(
            f"  interval={interval:6d} cycles  speedup={speedup:.3f}  "
            f"avg total leakage={total_bits:7.1f} bits  "
            f"assessments={assessments}"
        )
    write_result(results_dir, "ablation_time_interval", "\n".join(lines))
    totals = [t for _, _, t, _ in rows]
    # Coarser schedule, less total leakage (the prior-work trade-off).
    assert all(b < a for a, b in zip(totals, totals[1:]))
