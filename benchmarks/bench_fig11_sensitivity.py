"""Figure 11: LLC sensitivity study of all 36 SPEC17 benchmarks.

Each benchmark runs alone at every supported partition size; IPC is
normalized to the 8 MB-equivalent partition. The headline check: exactly
the paper's eight benchmarks classify as LLC-sensitive.
"""

from benchmarks.conftest import write_result
from repro.config import ArchConfig
from repro.harness.report import render_sensitivity
from repro.harness.runconfig import SCALED
from repro.harness.sensitivity import classify_benchmarks, run_sensitivity_study
from repro.workloads.spec import LLC_SENSITIVE_NAMES


def test_figure11_sensitivity_study(benchmark, results_dir, engine):
    def run():
        # 36 benchmarks x 9 sizes = 324 cells through the session engine
        # (parallel under REPRO_JOBS, cached across sessions on disk).
        return run_sensitivity_study(profile=SCALED, engine=engine)

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(results_dir, "figure11_sensitivity", render_sensitivity(curves))

    assert len(curves) == 36
    sensitive, insensitive = classify_benchmarks(
        curves, ArchConfig.scaled().default_partition_lines
    )
    # The paper's classification: 8 sensitive, 28 insensitive, same names.
    assert sensitive == sorted(LLC_SENSITIVE_NAMES)
    assert len(insensitive) == 28
    # Normalized IPC curves are monotone up to measurement noise.
    for curve in curves.values():
        normalized = curve.normalized_ipc
        for earlier, later in zip(normalized, normalized[1:]):
            assert later >= earlier - 0.1
