"""Campaign scheduler benchmark: fifo per-cell dispatch vs the
cell-major batching / work-stealing supervisor.

Measures what chunked dispatch (``repro.harness.exec``) buys on a
skewed campaign and writes the results to ``BENCH_campaign.json`` at
the repository root:

* **serial** — ``jobs=1``: the in-process reference whose results
  every parallel mode must reproduce byte-for-byte (run once, only to
  anchor bit-identity);
* **percell** — ``jobs=4`` under the legacy ``fifo`` scheduler: one
  cell per dispatch from a single shared queue, in submission order;
* **stolen** — the ``steal`` scheduler with ``batch_cells=1``:
  longest-expected-first seeding onto per-worker deques plus
  steal-on-idle, still one cell per dispatch;
* **batched** — the ``steal`` scheduler with ``batch_cells=8``: a
  whole batch group rides in one chunk to one worker, sharing that
  process's scratch arena and memoizers;
* **stacked** — the batched configuration plus ``stack_lanes=0``: each
  chunk's cells run as interleaved *lanes* of one vectorized kernel
  pass (:class:`repro.sim.batch.StackedLanes`), sharing workload
  builds and servicing every lane's cumulative sums with single 2-D
  ``np.cumsum`` calls, and the supervisor pre-computes shared pure
  state (L1 service traces, untangle rate tables) in the parent before
  forking, so every worker inherits it copy-on-write instead of
  recomputing it. Like batching, the win is less total work (shared
  builds, fewer interpreter/numpy round trips), so it survives a
  single-core host; results stay bit-identical to serial, lane
  divergences and all.

The campaign is deliberately skewed in *per-cell setup cost*: the
untangle cells lead the grid, and the first untangle cell in each
worker process pays the Dinkelbach rate-table solve (the store is
disabled, exactly the legacy sessions the scheduler must cope with).
Per-cell dispatch — fifo or stolen singletons — hands the leading
untangle cells to all four workers, so the campaign pays the solve
*four times*. Cell-major chunking dispatches the untangle group as
whole chunks to far fewer workers, each of which solves once and
reuses the table for the rest of its chunk: less total work, not just
better overlap, so the speedup survives even a single-core CI host. Work stealing's own benefit is
overlap — rebalancing stragglers across cores — so on a few-core host
the ``stolen`` mode measures ~1.0x, and can even dip below it when a
stolen untangle cell lands on a worker that has not solved yet and
pays a duplicate solve; both are recorded as measured (the
``campaign`` section records the host's core count for context). The
steal scheduler's balancing guarantees are pinned deterministically by
``tests/harness/test_scheduler.py`` instead.

Methodology matches ``bench_store.py``: every measurement runs in a
fresh child interpreter (clean memoizers and metrics), repetitions are
interleaved so all modes see the same machine drift, and the per-mode
minimum is reported. The recorded *speedups* (percell/stolen and
percell/batched on the same host) are the machine-independent
quantities the perf regression check (:mod:`repro.harness.perfbaseline`,
CI ``perf-smoke`` job) compares. All modes must be bit-identical to
the serial reference, and every mode's telemetry must satisfy
``computed + hit + replayed + failed == total``.

Usage::

    PYTHONPATH=src python benchmarks/bench_campaign.py            # full run
    PYTHONPATH=src python benchmarks/bench_campaign.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_campaign.py --output /tmp/b.json

Standalone script (not a pytest benchmark): each measurement needs its
own child interpreter and environment, which does not fit
``benchmark.pedantic`` cells; it defines no ``test_`` functions.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Where the results land (the committed perf baseline).
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_campaign.json"

#: Cheap schemes filling out the grid behind the untangle group.
FAST_SCHEMES = ("static", "shared", "time")

#: Workload pairs per cell; the solve skew is pair-count independent.
PAIRS = 2

JOBS = 4

#: JSON layout version, checked by :mod:`repro.harness.perfbaseline`.
FORMAT_VERSION = 1

#: Engine parameters per measured mode.
MODES: dict[str, dict] = {
    "serial": {"jobs": 1},
    "percell": {"jobs": JOBS, "scheduler": "fifo"},
    "stolen": {"jobs": JOBS, "scheduler": "steal", "batch_cells": 1},
    "batched": {"jobs": JOBS, "scheduler": "steal", "batch_cells": 8},
    "stacked": {
        "jobs": JOBS,
        "scheduler": "steal",
        "batch_cells": 8,
        "stack_lanes": 0,
    },
}

#: Scheduling telemetry shipped from the child for the report.
TELEMETRY_KEYS = (
    "steals",
    "batches",
    "batched_cells",
    "stacked_cells",
    "lane_divergences",
    "wall_seconds",
)


def campaign_cells(quick: bool):
    """The skewed grid: untangle cells first, fast cells behind them.

    Untangle-first is scheme-major submission order (as real campaign
    drivers emit it) and the adversarial case for per-cell dispatch:
    the supervisor hands the leading cells to distinct workers, so
    every worker pays the rate-table solve. The full run covers every
    paper mix (1-16); ``--quick`` keeps the first four (same shape, so
    the solve skew and speedups stay comparable to the committed
    full-run baseline).

    Some paper mixes share their leading ``PAIRS`` workload pairs
    (at depth 2: mixes 1 and 2, 8 and 9, 14 and 15, and 4 and 16 are
    identical), which would put the same cell — same label, same
    result — in the grid twice; duplicates are dropped so the
    fingerprint covers every cell exactly once. The deduplicated full
    grid is twelve cells per scheme.
    """
    from repro.harness.exec import MixSchemeCell
    from repro.harness.runconfig import BENCH
    from repro.workloads.mixes import get_mix

    mixes = range(1, 5) if quick else range(1, 17)
    cells = []
    seen = set()
    for scheme in ("untangle",) + FAST_SCHEMES:
        for mix_id in mixes:
            cell = MixSchemeCell(
                pairs=tuple(get_mix(mix_id)[:PAIRS]),
                scheme=scheme,
                profile=BENCH,
            )
            if cell.label not in seen:
                seen.add(cell.label)
                cells.append(cell)
    return cells


# ----------------------------------------------------------------------
# Child: one measured campaign in a clean interpreter
# ----------------------------------------------------------------------
def run_campaign(mode: str, quick: bool) -> dict:
    """Execute the grid once; returns wall, fingerprint, telemetry."""
    from repro.harness.exec import ExecutionEngine, MixSchemeCell

    cells = campaign_cells(quick)
    engine = ExecutionEngine(**MODES[mode])
    start = time.perf_counter()
    outcomes = engine.run(cells)
    wall = time.perf_counter() - start
    if not all(outcome.status == "computed" for outcome in outcomes):
        bad = [o.label for o in outcomes if o.status != "computed"]
        raise AssertionError(f"cells did not compute: {bad}")
    snap = engine.telemetry.snapshot()
    if (
        snap["computed"] + snap["hit"] + snap["replayed"] + snap["failed"]
        != snap["total"]
    ):
        raise AssertionError(f"telemetry invariant violated: {snap}")
    if mode == "stacked" and snap["stacked_cells"] != snap["total"]:
        raise AssertionError(
            "stacked mode left cells outside the lane stacks: "
            f"{snap['stacked_cells']}/{snap['total']}"
        )
    return {
        "wall": wall,
        "fingerprint": {
            outcome.cell.label: MixSchemeCell.encode(outcome.value)
            for outcome in outcomes
        },
        "telemetry": {key: snap[key] for key in TELEMETRY_KEYS},
    }


def _child_main(args) -> int:
    # The store would amortize the rate-table solve across workers and
    # sessions, hiding exactly the redundancy this benchmark measures;
    # the scheduler must stand on its own in store-less sessions.
    os.environ["REPRO_PRECOMPUTE"] = "off"
    report = run_campaign(args.mode, args.child_quick)
    json.dump(report, sys.stdout)
    return 0


# ----------------------------------------------------------------------
# Parent: interleave child measurements
# ----------------------------------------------------------------------
def _measure(mode: str, quick: bool) -> dict:
    env = dict(os.environ)
    for name in (
        "REPRO_JOBS",
        "REPRO_SCHED",
        "REPRO_BATCH_CELLS",
        "REPRO_SIM_STACK",
        "REPRO_CACHE",
        "REPRO_CACHE_DIR",
        "REPRO_JOURNAL",
        "REPRO_RESUME",
        "REPRO_FAULTS",
        "REPRO_PRECOMPUTE",
        "REPRO_STORE_DIR",
        "REPRO_STORE_SHM",
        "REPRO_TRACE",
        "REPRO_METRICS",
        "REPRO_PROFILE",
    ):
        env.pop(name, None)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    command = [sys.executable, str(Path(__file__).resolve()), "--child", mode]
    if quick:
        command.append("--child-quick")
    result = subprocess.run(
        command, capture_output=True, text=True, env=env, timeout=3600
    )
    if result.returncode != 0:
        raise AssertionError(f"{mode} campaign failed:\n{result.stderr}")
    return json.loads(result.stdout)


def bench_campaign(quick: bool, reps: int) -> dict:
    walls: dict[str, list[float]] = {
        "percell": [], "stolen": [], "batched": [], "stacked": []
    }
    telemetry: dict[str, dict] = {}
    fingerprints: list = []

    # The serial reference runs once: it only anchors bit-identity.
    serial = _measure("serial", quick)
    fingerprints.append(("serial", serial["fingerprint"]))
    print(f"  serial reference {serial['wall']:6.2f}s", flush=True)

    for rep in range(reps):
        for mode in ("percell", "stolen", "batched", "stacked"):
            report = _measure(mode, quick)
            walls[mode].append(report["wall"])
            telemetry[mode] = report["telemetry"]
            fingerprints.append((mode, report["fingerprint"]))
            print(
                f"  rep {rep + 1}/{reps} {mode:8s} {report['wall']:6.2f}s  "
                f"chunks={report['telemetry']['batches']:3d} "
                f"steals={report['telemetry']['steals']:3d}",
                flush=True,
            )

    reference = fingerprints[0][1]
    identical = all(fp == reference for _, fp in fingerprints)
    if not identical:
        divergent = sorted({mode for mode, fp in fingerprints if fp != reference})
        raise AssertionError(f"campaign results diverge across modes: {divergent}")

    percell = min(walls["percell"])
    stolen = min(walls["stolen"])
    batched = min(walls["batched"])
    stacked = min(walls["stacked"])
    return {
        "campaign": {
            "profile": "bench",
            "schemes": ["untangle", *FAST_SCHEMES],
            "pairs": PAIRS,
            "cells": len(reference),
            "jobs": JOBS,
            "host_cores": os.cpu_count(),
        },
        "serial": {"seconds": serial["wall"]},
        "percell": {
            "seconds": percell,
            "identical": identical,
            "telemetry": telemetry["percell"],
        },
        "stolen": {
            "seconds": stolen,
            "speedup": percell / stolen,
            "identical": identical,
            "telemetry": telemetry["stolen"],
        },
        "batched": {
            "seconds": batched,
            "speedup": percell / batched,
            "identical": identical,
            "telemetry": telemetry["batched"],
        },
        "stacked": {
            "seconds": stacked,
            "speedup": percell / stacked,
            # The headline ratio for the stacked-lanes layer: what
            # stacking buys over the already-chunked configuration.
            "speedup_vs_batched": batched / stacked,
            "identical": identical,
            "telemetry": telemetry["stacked"],
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark campaign scheduling: fifo per-cell dispatch "
        "vs work stealing (per-cell and chunked)."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: half the mix range and fewer repetitions (same "
        "grid shape — untangle cells leading on 4 workers — so the "
        "per-cell solve redundancy stays visible and speedups comparable)",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=None,
        help="interleaved repetitions per mode (default: 3, or 2 with --quick)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"result JSON path (default: {DEFAULT_OUTPUT})",
    )
    # Internal: run one campaign in this process and print its report.
    parser.add_argument("--child", dest="mode", choices=tuple(MODES))
    parser.add_argument("--child-quick", action="store_true")
    args = parser.parse_args(argv)
    if args.mode:
        return _child_main(args)

    reps = args.reps or (2 if args.quick else 3)
    print(
        f"scheduler campaign (skewed grid, jobs={JOBS}, min of {reps}):",
        flush=True,
    )
    results = bench_campaign(args.quick, reps)

    for mode in ("percell", "stolen", "batched", "stacked"):
        entry = results[mode]
        speedup = (
            f"  speedup={entry['speedup']:5.2f}x" if "speedup" in entry else ""
        )
        vs_batched = (
            f"  vs-batched={entry['speedup_vs_batched']:5.2f}x"
            if "speedup_vs_batched" in entry
            else ""
        )
        print(
            f"  {mode:8s} {entry['seconds']:6.2f}s{speedup}{vs_batched}",
            flush=True,
        )

    payload = {
        "format": FORMAT_VERSION,
        "kind": "campaign",
        "quick": args.quick,
        "reps": reps,
        **results,
    }
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[written to {args.output}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
