"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and writes
its text rendering to ``benchmarks/results/<name>.txt`` (so the output
survives pytest's capture). Mix results are cached per session because
Table 6 reuses the Figure 10 runs, exactly as the paper derives its
table from the same experiments.

All simulation cells flow through one session-wide
:class:`~repro.harness.exec.ExecutionEngine` backed by an on-disk result
cache at ``benchmarks/results/.cache``: a re-run of any benchmark driver
whose inputs (mix pairs, scheme, ``RunProfile``) are unchanged performs
zero simulations. Environment knobs:

* ``REPRO_JOBS=N`` — run cells on ``N`` worker processes (``0`` = one
  per CPU; default 1, the serial fallback — results are bit-identical).
* ``REPRO_CACHE=0`` — disable the on-disk cache.
* ``REPRO_CACHE_DIR=path`` — relocate it.
* ``REPRO_RETRIES=N`` / ``REPRO_TIMEOUT=S`` — per-cell retry budget and
  deadline (hung or crashed workers are killed and respawned).
* ``REPRO_RESUME=1`` — replay the crash-recovery journal
  (``<cache-dir>/journal.jsonl``) from an interrupted/killed session
  instead of re-simulating its completed cells.
* ``REPRO_FAULTS=spec`` — inject crashes/hangs/cache corruption for
  chaos runs (see :mod:`repro.harness.faults`).

All benchmarks use ``benchmark.pedantic(..., rounds=1, iterations=1)``:
each experiment is a deterministic simulation whose *result* is the
deliverable; repeating it would only repeat identical work.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.harness.exec import ExecutionEngine, engine_from_env
from repro.harness.experiment import MixResult, run_mix
from repro.harness.report import render_telemetry
from repro.harness.runconfig import SCALED

RESULTS_DIR = Path(__file__).parent / "results"
CACHE_DIR = RESULTS_DIR / ".cache"

#: Schemes every figure mix is run under (Table 4).
FIGURE_SCHEMES = ("static", "time", "untangle", "shared")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def engine() -> ExecutionEngine:
    """The session's execution engine (REPRO_JOBS / REPRO_CACHE aware)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    engine = engine_from_env(default_cache_dir=CACHE_DIR)
    yield engine
    if engine.telemetry.cells:
        print(f"\n{render_telemetry(engine.telemetry)}")


@pytest.fixture(scope="session")
def mix_cache(engine):
    """Session cache of mix runs keyed by (mix_id, schemes).

    Backed by the session engine, so repeated requests hit the in-memory
    dict, and cross-session re-runs hit the on-disk result cache.
    """
    cache: dict[tuple[int, tuple[str, ...]], MixResult] = {}

    def get(mix_id: int, schemes: tuple[str, ...] = FIGURE_SCHEMES) -> MixResult:
        key = (mix_id, schemes)
        if key not in cache:
            cache[key] = run_mix(mix_id, SCALED, schemes=schemes, engine=engine)
        return cache[key]

    return get


def write_result(results_dir: Path, name: str, text: str) -> None:
    """Persist one rendered table/figure and echo it."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
