"""Figure 10: Mixes 1-4 under Static / Time / Untangle / Shared.

Regenerates, for each of the four mixes the paper shows in the main
figure: per-workload IPC normalized to Static, leakage per assessment of
Time and Untangle, and the partition-size distribution — plus the
system-wide geometric-mean speedups quoted in Section 9.

Mix cells run through the session execution engine (``mix_cache``):
set ``REPRO_JOBS=N`` to simulate the four schemes in parallel, and a
re-run with unchanged inputs is served entirely from the on-disk result
cache at ``benchmarks/results/.cache`` (zero simulations).
"""

import pytest

from benchmarks.conftest import FIGURE_SCHEMES, write_result
from repro.harness.figures import figure_group
from repro.harness.report import render_figure_group
from repro.harness.runconfig import SCALED


@pytest.mark.parametrize("mix_id", [1, 2, 3, 4])
def test_figure10_mix(benchmark, mix_id, mix_cache, results_dir):
    def run():
        return mix_cache(mix_id, FIGURE_SCHEMES)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    group = figure_group(mix_id, SCALED, mix_result=result)
    write_result(results_dir, f"figure10_mix{mix_id}", render_figure_group(group))

    # Shape assertions mirroring Section 9's narrative.
    time_speedup = result.geomean_speedup("time")
    untangle_speedup = result.geomean_speedup("untangle")
    # Dynamic schemes beat Static system-wide.
    assert time_speedup > 1.0
    assert untangle_speedup > 1.0
    # Untangle leaks far less than Time per assessment.
    time_bits = result.runs["time"].mean_bits_per_assessment
    untangle_bits = result.runs["untangle"].mean_bits_per_assessment
    assert untangle_bits < 0.5 * time_bits
    # Most Untangle assessments are Maintain (paper: ~90%).
    assert result.runs["untangle"].maintain_fraction > 0.7
