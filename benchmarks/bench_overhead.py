"""Control-plane overhead benchmark: per-cell fsync + per-file cache vs
the group-commit journal + packed cache segments.

A campaign of *cheap* cells is control-plane bound: the journal fsync
and the result-cache write dominate each cell's wall time. This
benchmark measures that bound directly and writes the results to
``BENCH_overhead.json`` at the repository root:

* **off** — no journal, no cache: the pure-compute floor (run once,
  for context; nothing to compare bit-identically against it because
  it leaves no artifacts);
* **percell** — the legacy control plane: a synchronous journal
  (``batch_entries=1``: one ``write`` + one ``fsync`` per cell) and the
  per-file cache layout (one JSON file per cell, ``mkstemp`` +
  ``os.replace`` each);
* **grouped** — the fast path: the group-commit journal
  (``batch_entries=64`` with a linger flush, one ``fsync`` per batch)
  and the packed cache layout (append-only segment per shard, one
  ``write`` per cell, index sidecar on close).

Each arm runs the same synthetic campaign of trivial cells whose
values carry floats, so the recorded fingerprints prove the fast path
is bit-identical to the legacy one — batching moves *when* bytes reach
the disk, never *what* they say. Both persisted arms also re-run the
campaign against their own cache (the ``warm`` measurement) and assert
every cell hits: the packed segments round-trip everything they
absorbed.

The headline ratio — ``percell`` vs ``grouped`` cells/sec on the same
host — is the machine-independent quantity the perf regression check
(:mod:`repro.harness.perfbaseline`, CI ``perf-smoke`` job) compares.

Methodology matches ``bench_campaign.py``: every measurement runs in a
fresh child interpreter (clean memoizers and metrics), repetitions are
interleaved so both arms see the same machine drift, and the per-arm
minimum wall is reported.

Usage::

    PYTHONPATH=src python benchmarks/bench_overhead.py            # full run
    PYTHONPATH=src python benchmarks/bench_overhead.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_overhead.py --output /tmp/b.json

Standalone script (not a pytest benchmark): each measurement needs its
own child interpreter and environment; it defines no ``test_``
functions.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import subprocess
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Where the results land (the committed perf baseline).
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_overhead.json"

#: JSON layout version, checked by :mod:`repro.harness.perfbaseline`.
FORMAT_VERSION = 1

#: Cells per campaign (the quick mode keeps the same per-cell shape).
CELLS_FULL = 2000
CELLS_QUICK = 400

#: Group-commit batch size of the fast arm.
BATCH_ENTRIES = 64

MODES = ("off", "percell", "grouped")


class OverheadCell:
    """Near-free cell: all its cost is the control plane's.

    The value carries floats (including non-dyadic ones) so the
    fingerprint comparison would catch any lossy round-trip through
    the journal or either cache layout.
    """

    def __init__(self, index: int):
        self.index = index

    @property
    def label(self) -> str:
        return f"overhead[{self.index}]"

    def cache_token(self):
        return {"kind": "bench-overhead", "index": self.index}

    def execute(self):
        i = self.index
        return {"index": i, "seventh": (i + 1) / 7.0, "third": (i + 1) / 3.0}

    @staticmethod
    def cycles_of(value):
        return None

    @staticmethod
    def encode(value):
        return value

    @staticmethod
    def decode(payload):
        return payload


def _engine(mode: str, root: Path):
    from repro.harness.exec import ExecutionEngine, ResultCache
    from repro.harness.journal import RunJournal

    if mode == "off":
        return ExecutionEngine(jobs=1)
    if mode == "percell":
        cache = ResultCache(root / "cache", layout="files")
        journal = RunJournal(root / "journal.jsonl", batch_entries=1)
    else:
        cache = ResultCache(root / "cache", layout="pack")
        journal = RunJournal(
            root / "journal.jsonl",
            batch_entries=BATCH_ENTRIES,
            linger_seconds=0.05,
        )
    return ExecutionEngine(jobs=1, cache=cache, journal=journal)


def _assert_invariant(engine) -> dict:
    snap = engine.telemetry.snapshot()
    if (
        snap["computed"] + snap["hit"] + snap["replayed"] + snap["failed"]
        != snap["total"]
    ):
        raise AssertionError(f"telemetry invariant violated: {snap}")
    return snap


def run_overhead(mode: str, quick: bool) -> dict:
    """Execute the campaign once (plus a warm re-run for cached arms)."""
    cells = [OverheadCell(i) for i in range(CELLS_QUICK if quick else CELLS_FULL)]
    root = Path(tempfile.mkdtemp(prefix=f"bench-overhead-{mode}-"))
    try:
        engine = _engine(mode, root)
        start = time.perf_counter()
        outcomes = engine.run(cells, campaign="bench-overhead")
        wall = time.perf_counter() - start
        if not all(o.status == "computed" for o in outcomes):
            bad = [o.label for o in outcomes if o.status != "computed"]
            raise AssertionError(f"cells did not compute: {bad}")
        _assert_invariant(engine)
        fingerprint = {
            o.cell.label: OverheadCell.encode(o.value) for o in outcomes
        }
        report = {
            "wall": wall,
            "cells": len(cells),
            "fingerprint": fingerprint,
        }
        if mode != "off":
            # Warm re-run against the same cache: every cell must hit,
            # with values identical to the cold pass — the cache layout
            # round-trips everything it absorbed.
            warm_engine = _engine(mode, root)
            start = time.perf_counter()
            warm_outcomes = warm_engine.run(cells, campaign="bench-overhead")
            report["warm_wall"] = time.perf_counter() - start
            snap = _assert_invariant(warm_engine)
            if snap["hit"] != len(cells):
                raise AssertionError(
                    f"warm {mode} run missed the cache: {snap}"
                )
            warm_fingerprint = {
                o.cell.label: OverheadCell.encode(o.value)
                for o in warm_outcomes
            }
            if warm_fingerprint != fingerprint:
                raise AssertionError(f"warm {mode} values diverge from cold")
        return report
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _child_main(args) -> int:
    report = run_overhead(args.mode, args.child_quick)
    json.dump(report, sys.stdout)
    return 0


def _measure(mode: str, quick: bool) -> dict:
    env = dict(os.environ)
    for name in (
        "REPRO_JOBS",
        "REPRO_SCHED",
        "REPRO_BATCH_CELLS",
        "REPRO_SIM_STACK",
        "REPRO_CACHE",
        "REPRO_CACHE_DIR",
        "REPRO_JOURNAL",
        "REPRO_JOURNAL_BATCH",
        "REPRO_JOURNAL_LINGER",
        "REPRO_RESUME",
        "REPRO_FAULTS",
        "REPRO_PRECOMPUTE",
        "REPRO_STORE_DIR",
        "REPRO_STORE_SHM",
        "REPRO_TRACE",
        "REPRO_METRICS",
        "REPRO_PROFILE",
    ):
        env.pop(name, None)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    command = [sys.executable, str(Path(__file__).resolve()), "--child", mode]
    if quick:
        command.append("--child-quick")
    result = subprocess.run(
        command, capture_output=True, text=True, env=env, timeout=3600
    )
    if result.returncode != 0:
        raise AssertionError(f"{mode} campaign failed:\n{result.stderr}")
    return json.loads(result.stdout)


def bench_overhead(quick: bool, reps: int) -> dict:
    walls: dict[str, list[float]] = {"percell": [], "grouped": []}
    warm_walls: dict[str, list[float]] = {"percell": [], "grouped": []}
    fingerprints: list = []

    # The no-I/O floor runs once: it only anchors the overhead numbers.
    off = _measure("off", quick)
    cells = off["cells"]
    fingerprints.append(("off", off["fingerprint"]))
    print(
        f"  off (no journal/cache) {off['wall']:6.2f}s "
        f"({cells / off['wall']:8.0f} cells/s)",
        flush=True,
    )

    for rep in range(reps):
        for mode in ("percell", "grouped"):
            report = _measure(mode, quick)
            walls[mode].append(report["wall"])
            warm_walls[mode].append(report["warm_wall"])
            fingerprints.append((mode, report["fingerprint"]))
            print(
                f"  rep {rep + 1}/{reps} {mode:8s} {report['wall']:6.2f}s "
                f"({cells / report['wall']:8.0f} cells/s)  "
                f"warm {report['warm_wall']:5.2f}s",
                flush=True,
            )

    reference = fingerprints[0][1]
    identical = all(fp == reference for _, fp in fingerprints)
    if not identical:
        divergent = sorted(
            {mode for mode, fp in fingerprints if fp != reference}
        )
        raise AssertionError(f"results diverge across arms: {divergent}")

    percell = min(walls["percell"])
    grouped = min(walls["grouped"])
    percell_warm = min(warm_walls["percell"])
    grouped_warm = min(warm_walls["grouped"])
    return {
        "campaign": {
            "cells": cells,
            "jobs": 1,
            "batch_entries": BATCH_ENTRIES,
            "host_cores": os.cpu_count(),
        },
        "off": {
            "seconds": off["wall"],
            "cells_per_sec": cells / off["wall"],
        },
        "percell": {
            "seconds": percell,
            "cells_per_sec": cells / percell,
            "warm_seconds": percell_warm,
            "identical": identical,
        },
        "grouped": {
            "seconds": grouped,
            "cells_per_sec": cells / grouped,
            # The headline: what group commit + packed segments buy on
            # a control-plane-bound campaign.
            "speedup": percell / grouped,
            "warm_seconds": grouped_warm,
            "warm_speedup": percell_warm / grouped_warm,
            "identical": identical,
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark control-plane overhead: per-cell fsync and "
        "per-file cache writes vs group commit and packed segments."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: fewer cells and repetitions (same per-cell "
        "control-plane work, so the speedup stays comparable to the "
        "committed full-run baseline)",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=None,
        help="interleaved repetitions per arm (default: 3, or 2 with --quick)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"result JSON path (default: {DEFAULT_OUTPUT})",
    )
    # Internal: run one campaign in this process and print its report.
    parser.add_argument("--child", dest="mode", choices=MODES)
    parser.add_argument("--child-quick", action="store_true")
    args = parser.parse_args(argv)
    if args.mode:
        return _child_main(args)

    reps = args.reps or (2 if args.quick else 3)
    print(
        f"control-plane overhead (trivial cells, jobs=1, min of {reps}):",
        flush=True,
    )
    results = bench_overhead(args.quick, reps)

    for mode in ("percell", "grouped"):
        entry = results[mode]
        speedup = (
            f"  speedup={entry['speedup']:5.2f}x" if "speedup" in entry else ""
        )
        print(
            f"  {mode:8s} {entry['seconds']:6.2f}s "
            f"({entry['cells_per_sec']:8.0f} cells/s){speedup}",
            flush=True,
        )

    payload = {
        "format": FORMAT_VERSION,
        "kind": "overhead",
        "quick": args.quick,
        "reps": reps,
        **results,
    }
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[written to {args.output}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
